"""Tests for the last-level cache model."""

import pytest

from repro.cpu.cache import AccessResult, CacheConfig, LastLevelCache


@pytest.fixture
def small_cache():
    # 8 KiB, 4-way, 64-byte lines -> 32 sets.
    return LastLevelCache(CacheConfig(size_bytes=8 * 1024, associativity=4, line_bytes=64))


class TestCacheConfig:
    def test_num_sets(self):
        config = CacheConfig(size_bytes=8 * 1024 * 1024, associativity=16, line_bytes=64)
        assert config.num_sets == 8192

    def test_paper_configs(self):
        assert CacheConfig.paper_single_core().size_bytes == 8 * 1024 * 1024
        assert CacheConfig.paper_multi_core().size_bytes == 16 * 1024 * 1024

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, associativity=3, line_bytes=64)


class TestCacheBehaviour:
    def test_miss_then_hit(self, small_cache):
        first = small_cache.access(0x1000)
        assert not first.hit
        assert first.fill_address == 0x1000
        second = small_cache.access(0x1000)
        assert second.hit
        assert small_cache.stats.hits == 1
        assert small_cache.stats.misses == 1

    def test_same_line_different_offset_hits(self, small_cache):
        small_cache.access(0x1000)
        assert small_cache.access(0x103F).hit

    def test_lru_eviction(self, small_cache):
        """Filling a set beyond associativity evicts the least recently used line."""
        config = small_cache.config
        set_stride = config.num_sets * config.line_bytes
        addresses = [i * set_stride for i in range(config.associativity + 1)]
        for address in addresses:
            small_cache.access(address)
        # The first (LRU) address must have been evicted.
        assert not small_cache.contains(addresses[0])
        assert small_cache.contains(addresses[-1])

    def test_lru_updated_on_hit(self, small_cache):
        config = small_cache.config
        set_stride = config.num_sets * config.line_bytes
        addresses = [i * set_stride for i in range(config.associativity)]
        for address in addresses:
            small_cache.access(address)
        # Touch the oldest line, then insert a new one: the second-oldest goes.
        small_cache.access(addresses[0])
        small_cache.access(config.associativity * set_stride)
        assert small_cache.contains(addresses[0])
        assert not small_cache.contains(addresses[1])

    def test_dirty_eviction_produces_writeback(self, small_cache):
        config = small_cache.config
        set_stride = config.num_sets * config.line_bytes
        small_cache.access(0, is_write=True)
        result = AccessResult(hit=True)
        for i in range(1, config.associativity + 1):
            result = small_cache.access(i * set_stride)
        assert result.writeback_address == 0
        assert small_cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self, small_cache):
        config = small_cache.config
        set_stride = config.num_sets * config.line_bytes
        small_cache.access(0, is_write=False)
        last = None
        for i in range(1, config.associativity + 1):
            last = small_cache.access(i * set_stride)
        assert last.writeback_address is None

    def test_write_hit_marks_dirty(self, small_cache):
        config = small_cache.config
        set_stride = config.num_sets * config.line_bytes
        small_cache.access(0)                 # clean fill
        small_cache.access(0, is_write=True)  # dirty it
        for i in range(1, config.associativity + 1):
            result = small_cache.access(i * set_stride)
        assert result.writeback_address == 0

    def test_flush(self, small_cache):
        small_cache.access(0x1000, is_write=True)
        small_cache.access(0x2000)
        writebacks = small_cache.flush()
        assert writebacks == [0x1000]
        assert small_cache.occupancy == 0

    def test_hit_and_miss_rate(self, small_cache):
        small_cache.access(0x1000)
        small_cache.access(0x1000)
        assert small_cache.stats.hit_rate == pytest.approx(0.5)
        assert small_cache.stats.miss_rate == pytest.approx(0.5)

    def test_streaming_working_set_larger_than_cache_always_misses(self, small_cache):
        config = small_cache.config
        lines = config.num_sets * config.associativity * 2
        for i in range(lines):
            small_cache.access(i * config.line_bytes)
        for i in range(lines // 2):
            assert not small_cache.access(i * config.line_bytes).hit
