"""Tests for the Hydra mitigation (hybrid group / per-row tracking)."""


from repro.mitigations.hydra import Hydra, HydraConfig
from tests.conftest import make_address


def make_hydra(fake_controller, nrh=1000, **config_overrides):
    config = HydraConfig(nrh=nrh, **config_overrides)
    hydra = Hydra(nrh=nrh, config=config)
    hydra.attach(fake_controller)
    return hydra


class TestHydraConfig:
    def test_thresholds(self):
        config = HydraConfig(nrh=1000)
        assert config.group_threshold == 250
        assert config.row_threshold == 500

    def test_low_nrh_thresholds(self):
        config = HydraConfig(nrh=125)
        assert config.group_threshold == 31
        assert config.row_threshold == 62


class TestGroupCounting:
    def test_no_dram_traffic_below_group_threshold(self, fake_controller, tiny_dram_config):
        hydra = make_hydra(fake_controller, nrh=1000)
        address = make_address(tiny_dram_config, row=10)
        for cycle in range(hydra.config.group_threshold - 1):
            hydra.on_activation(cycle, address, is_preventive=False)
        assert fake_controller.mitigation_requests == []
        assert fake_controller.preventive_refreshes == []

    def test_group_promotion_starts_per_row_tracking(self, fake_controller, tiny_dram_config):
        hydra = make_hydra(fake_controller, nrh=1000)
        address = make_address(tiny_dram_config, row=10)
        for cycle in range(hydra.config.group_threshold + 1):
            hydra.on_activation(cycle, address, is_preventive=False)
        assert hydra.stats.extra.get("group_promotions", 0) == 1
        # The first per-row access after promotion misses the RCC -> DRAM fetch.
        assert len(fake_controller.mitigation_requests) >= 1

    def test_group_counter_shared_by_rows_in_group(self, fake_controller, tiny_dram_config):
        """Activations to different rows of one group all advance its group counter."""
        hydra = make_hydra(fake_controller, nrh=1000, rows_per_group=16)
        threshold = hydra.config.group_threshold
        cycle = 0
        for i in range(threshold):
            address = make_address(tiny_dram_config, row=i % 16)
            hydra.on_activation(cycle, address, is_preventive=False)
            cycle += 1
        assert hydra.stats.extra.get("group_promotions", 0) == 1

    def test_preventive_refresh_at_row_threshold(self, fake_controller, tiny_dram_config):
        hydra = make_hydra(fake_controller, nrh=1000)
        address = make_address(tiny_dram_config, row=10)
        for cycle in range(hydra.config.row_threshold + 2):
            hydra.on_activation(cycle, address, is_preventive=False)
        victims = {a.row for a, _ in fake_controller.preventive_refreshes}
        assert victims == {9, 11}

    def test_hydra_overestimates_rows_in_hot_groups(self, fake_controller, tiny_dram_config):
        """A row activated once in a hot group inherits the group count (the
        overestimation the CoMeT paper criticizes in Section 3.2)."""
        hydra = make_hydra(fake_controller, nrh=1000, rows_per_group=16)
        threshold = hydra.config.group_threshold
        cycle = 0
        # Heat the group using row 0 only.
        address0 = make_address(tiny_dram_config, row=0)
        for _ in range(threshold + 1):
            hydra.on_activation(cycle, address0, is_preventive=False)
            cycle += 1
        # Row 5 (same group) activated once is already considered near-threshold.
        address5 = make_address(tiny_dram_config, row=5)
        hydra.on_activation(cycle, address5, is_preventive=False)
        row_key = (address5.bank_key, 5)
        assert hydra._rct[row_key] >= threshold


class TestRCCTraffic:
    def test_rcc_miss_generates_dram_read(self, fake_controller, tiny_dram_config):
        hydra = make_hydra(fake_controller, nrh=1000, rcc_entries=2, rows_per_group=8)
        threshold = hydra.config.group_threshold
        cycle = 0
        address = make_address(tiny_dram_config, row=0)
        for _ in range(threshold + 1):
            hydra.on_activation(cycle, address, is_preventive=False)
            cycle += 1
        baseline_requests = len(fake_controller.mitigation_requests)
        # Touch many distinct rows of the promoted group region: the tiny RCC
        # thrashes and every access costs a DRAM read.
        for row in range(1, 8):
            hydra.on_activation(cycle, make_address(tiny_dram_config, row=row), is_preventive=False)
            cycle += 1
        assert len(fake_controller.mitigation_requests) > baseline_requests
        assert hydra.stats.extra.get("rcc_misses", 0) >= 6

    def test_rcc_hit_avoids_dram_traffic(self, fake_controller, tiny_dram_config):
        hydra = make_hydra(fake_controller, nrh=1000)
        threshold = hydra.config.group_threshold
        cycle = 0
        address = make_address(tiny_dram_config, row=0)
        for _ in range(threshold + 2):
            hydra.on_activation(cycle, address, is_preventive=False)
            cycle += 1
        first = len(fake_controller.mitigation_requests)
        for _ in range(10):
            hydra.on_activation(cycle, address, is_preventive=False)
            cycle += 1
        assert len(fake_controller.mitigation_requests) == first
        assert hydra.stats.extra.get("rcc_hits", 0) >= 10

    def test_dirty_eviction_generates_writeback(self, fake_controller, tiny_dram_config):
        hydra = make_hydra(fake_controller, nrh=1000, rcc_entries=1, rows_per_group=8)
        threshold = hydra.config.group_threshold
        cycle = 0
        address = make_address(tiny_dram_config, row=0)
        for _ in range(threshold + 1):
            hydra.on_activation(cycle, address, is_preventive=False)
            cycle += 1
        for row in range(1, 5):
            hydra.on_activation(cycle, make_address(tiny_dram_config, row=row), is_preventive=False)
            cycle += 1
        writes = [req for req in fake_controller.mitigation_requests if req[1]]
        assert writes, "expected RCC dirty writebacks to DRAM"

    def test_counter_addresses_land_in_reserved_region(self, fake_controller, tiny_dram_config):
        hydra = make_hydra(fake_controller, nrh=1000)
        address = make_address(tiny_dram_config, row=5)
        counter_address = hydra._counter_dram_address(address)
        rows = tiny_dram_config.organization.rows_per_bank
        assert counter_address.row >= rows - 8
        assert counter_address.bank_key == address.bank_key


class TestReset:
    def test_periodic_reset(self, fake_controller, tiny_dram_config):
        hydra = make_hydra(fake_controller, nrh=1000)
        address = make_address(tiny_dram_config, row=10)
        for cycle in range(hydra.config.group_threshold + 5):
            hydra.on_activation(cycle, address, is_preventive=False)
        reset_period = tiny_dram_config.tREFW // hydra.config.reset_divider
        hydra.on_activation(reset_period + 1, address, is_preventive=False)
        assert hydra.stats.counter_resets >= 1
        assert not hydra._tracked_groups

    def test_storage_report(self, fake_controller):
        hydra = make_hydra(fake_controller, nrh=1000)
        report = hydra.storage_report()
        assert report["sram_KiB"] > 0
        assert report["in_dram_counters_KiB"] > 0
