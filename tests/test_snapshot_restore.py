"""Round-trip tests for the Checkpoint protocol (``snapshot``/``restore``).

The sampled-fidelity executor depends on every stateful component producing
plain-data checkpoints that reproduce *identical subsequent behaviour* when
restored into a freshly constructed twin.  Two layers pin that:

* **Per-mitigation property tests** (hypothesis): drive a mitigation with an
  arbitrary prefix of ACT/REF events, snapshot, restore into an identically
  constructed instance, then feed both the same suffix — the restored twin
  must emit the same preventive-refresh decisions and end in the same state.
  Snapshots must survive a pickle round trip (the on-disk checkpoint form).
* **Whole-system pause/resume** per mitigation: run half a simulation in
  detail, checkpoint every component, restore into a fresh system and finish
  it there — the final :class:`SimulationResult` must be identical to an
  uninterrupted run (everything except the kernel step counter, which is
  split across the two kernels).
"""

import math
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.address import AddressMapper, DRAMAddress
from repro.dram.config import small_test_config
from repro.dram.dram_system import DRAMSystem
from repro.experiment import mitigation_names
from repro.sim.engine import EventKernel
from repro.sim.runner import build_mitigation, default_experiment_config
from repro.sim.sampled import _run_detailed
from repro.experiment.execute import build_workload_traces
from repro.experiment.spec import WorkloadSpec
from repro.sim.system import System, SystemConfig

MITIGATIONS = mitigation_names()

CONFIG = small_test_config(
    rows_per_bank=64,
    banks_per_bankgroup=2,
    bankgroups_per_rank=2,
    ranks_per_channel=1,
    refresh_window_scale=1.0 / 2048.0,
)


class _StubController:
    """Just enough controller surface to drive a mitigation standalone.

    Preventive decisions are recorded instead of simulated, so two
    mitigations fed the same event stream can be compared output-for-output.
    """

    def __init__(self) -> None:
        self.dram_config = CONFIG
        self.channel = 0
        self.mapper = AddressMapper(CONFIG)
        self.dram = DRAMSystem(CONFIG)
        self.outputs = []

    def schedule_preventive_refresh(self, address: DRAMAddress, cycle) -> None:
        self.outputs.append(("refresh", address, cycle))

    def schedule_rank_refresh(self, channel: int, rank: int, count: int) -> None:
        self.outputs.append(("rank_refresh", channel, rank, count))

    def enqueue_mitigation_request(self, address, is_write, cycle) -> bool:
        self.outputs.append(("request", address, is_write, cycle))
        return True


def _attached(name: str):
    # PARA refuses a derived p at nrh=16 (supercritical preventive
    # cascade); an explicit probability keeps it in the round-trip suite.
    kwargs = {"probability": 0.3} if name == "para" else {}
    mitigation = build_mitigation(name, nrh=16, **kwargs)
    mitigation.attach(_StubController())
    return mitigation


_addresses = st.builds(
    DRAMAddress,
    channel=st.just(0),
    rank=st.just(0),
    bankgroup=st.integers(0, 1),
    bank=st.integers(0, 1),
    row=st.integers(0, 63),
    column=st.just(0),
)
_events = st.lists(
    st.one_of(
        st.tuples(st.just("act"), _addresses),
        st.tuples(st.just("ref"), st.integers(0, 56)),
    ),
    max_size=120,
)


def _apply(mitigation, events, base_cycle: int) -> None:
    for offset, event in enumerate(events):
        cycle = base_cycle + offset
        if event[0] == "act":
            mitigation.on_activation(cycle, event[1], False)
        else:
            mitigation.on_refresh(cycle, (0, 0), event[1], 8)


class TestMitigationRoundTrip:
    @pytest.mark.parametrize("name", MITIGATIONS)
    @settings(max_examples=20, deadline=None)
    @given(prefix=_events, suffix=_events)
    def test_restore_reproduces_subsequent_behavior(self, name, prefix, suffix):
        original = _attached(name)
        _apply(original, prefix, base_cycle=0)
        # The on-disk checkpoint form: a plain picklable dict.
        checkpoint = pickle.loads(pickle.dumps(original.snapshot()))

        twin = _attached(name)
        twin.restore(checkpoint)
        assert twin.snapshot() == original.snapshot()

        seen = len(original.controller.outputs)
        _apply(original, suffix, base_cycle=len(prefix))
        _apply(twin, suffix, base_cycle=len(prefix))
        assert twin.controller.outputs == original.controller.outputs[seen:]
        assert twin.snapshot() == original.snapshot()

    @pytest.mark.parametrize("name", MITIGATIONS)
    def test_act_allowed_cycle_agrees_after_restore(self, name):
        """Throttling state (BlockHammer) must survive the round trip too."""
        original = _attached(name)
        hammered = DRAMAddress(channel=0, rank=0, bankgroup=0, bank=0, row=7, column=0)
        for cycle in range(64):
            original.on_activation(cycle, hammered, False)
        twin = _attached(name)
        twin.restore(original.snapshot())
        for probe_row in (6, 7, 8):
            probe = DRAMAddress(
                channel=0, rank=0, bankgroup=0, bank=0, row=probe_row, column=0
            )
            assert twin.act_allowed_cycle(probe, 64) == original.act_allowed_cycle(
                probe, 64
            )


# --------------------------------------------------------------------- #
# Whole-system pause/resume
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def dram_config():
    return default_experiment_config()


@pytest.fixture(scope="module")
def trace(dram_config):
    return build_workload_traces(
        WorkloadSpec(name="synth_blacksmith", num_requests=1500), dram_config
    )[0]


def _build_system(trace, dram_config, name: str) -> System:
    return System(
        [trace],
        mitigation=build_mitigation(name, nrh=250),
        config=SystemConfig(dram=dram_config, nrh_for_verification=250),
    )


def _snapshot_system(system: System) -> dict:
    return {
        "cores": [core.snapshot() for core in system.cores],
        "controllers": [ctl.snapshot() for ctl in system.fabric.controllers],
        "verifiers": [verifier.snapshot() for verifier in system.verifiers],
    }


def _restore_system(system: System, state: dict) -> None:
    for core, snap in zip(system.cores, state["cores"]):
        core.restore(snap)
    for ctl, snap in zip(system.fabric.controllers, state["controllers"]):
        ctl.restore(snap)
    for verifier, snap in zip(system.verifiers, state["verifiers"]):
        verifier.restore(snap)


class TestSystemPauseResume:
    @staticmethod
    def _finish(system: System, kernel: EventKernel):
        for core in system.cores:
            core.window_limit = None
        now = kernel.run()
        system._steps = kernel.steps
        final = max(system.fabric.drain(int(math.ceil(now))), int(math.ceil(now)))
        return system._build_result(final)

    @pytest.mark.parametrize("name", MITIGATIONS)
    def test_restored_system_finishes_identically(self, trace, dram_config, name):
        # Run to a drained midpoint, checkpoint, and fork: the original
        # continues in place while a freshly built twin continues from the
        # restored checkpoint.  Their final results must match field for
        # field (the pause is common to both, so any difference is restore
        # infidelity).
        paused = _build_system(trace, dram_config, name)
        kernel = EventKernel(
            paused.cores, paused.fabric, max_steps=paused.config.max_steps
        )
        _run_detailed(kernel, paused.cores, len(trace) // 2)
        checkpoint = pickle.loads(pickle.dumps(_snapshot_system(paused)))
        paused_now = kernel.now
        reference = self._finish(paused, kernel)

        resumed = _build_system(trace, dram_config, name)
        _restore_system(resumed, checkpoint)
        resumed_kernel = EventKernel(
            resumed.cores, resumed.fabric, max_steps=resumed.config.max_steps
        )
        resumed_kernel.now = paused_now
        result = self._finish(resumed, resumed_kernel)

        expected = dict(vars(reference))
        actual = dict(vars(result))
        # The kernel step counter is split across the pause, so it is the
        # one field allowed to differ.
        expected.pop("steps")
        actual.pop("steps")
        assert actual == expected

    def test_undrained_snapshots_are_refused(self, trace, dram_config):
        """Snapshots are only defined at drained points; mid-flight state
        (request closures on the heap) is deliberately unsnapshottable."""
        system = _build_system(trace, dram_config, "comet")
        core = system.cores[0]
        # Issue one entry directly: a read goes in flight and its request
        # lands in the controller queue, so both guards must trip.
        core.step(0.0)
        assert core._outstanding, "expected the first step to issue a read"
        with pytest.raises(RuntimeError):
            core.snapshot()
        controller = system.fabric.controllers[0]
        assert controller.pending_requests() > 0
        with pytest.raises(RuntimeError):
            controller.snapshot()


class TestRFMPolicyPauseResume:
    """The RFM refresh policy's rolling state rides controller checkpoints.

    Same fork-and-compare shape as ``TestSystemPauseResume``, but with the
    DDR5 ``rfm`` refresh policy active on the controller: the restored twin
    must owe the same RFMs (RAA counters, per-bank row trackers, due set)
    and therefore finish with an identical result, RFM and in-DRAM refresh
    counts included.
    """

    def test_restored_system_finishes_identically(self, trace, dram_config):
        from repro.controller.policies import ControllerPolicySpec

        policy = ControllerPolicySpec(
            refresh_policy="rfm", params={"raaimt": 16, "raammt": 32}
        )

        def build() -> System:
            return System(
                [trace],
                mitigation=build_mitigation("none", nrh=250),
                config=SystemConfig(
                    dram=dram_config, policy=policy, nrh_for_verification=250
                ),
            )

        paused = build()
        kernel = EventKernel(
            paused.cores, paused.fabric, max_steps=paused.config.max_steps
        )
        _run_detailed(kernel, paused.cores, len(trace) // 2)
        checkpoint = pickle.loads(pickle.dumps(_snapshot_system(paused)))
        paused_now = kernel.now
        reference = TestSystemPauseResume._finish(paused, kernel)
        assert reference.dram_stats["acts"] > 0

        resumed = build()
        _restore_system(resumed, checkpoint)
        resumed_kernel = EventKernel(
            resumed.cores, resumed.fabric, max_steps=resumed.config.max_steps
        )
        resumed_kernel.now = paused_now
        result = TestSystemPauseResume._finish(resumed, resumed_kernel)

        expected = dict(vars(reference))
        actual = dict(vars(result))
        expected.pop("steps")
        actual.pop("steps")
        assert actual == expected


# --------------------------------------------------------------------- #
# Sketch checkpoints across backends
# --------------------------------------------------------------------- #
class TestSketchCheckpointPortability:
    """Numpy-backed sketch checkpoints are plain data and backend-portable.

    The vectorized sketches (:mod:`repro.sketch`) keep their counters in
    numpy arrays; their snapshots must still be the *same plain-Python
    data* the list-backed fallback produces — picklable, JSON-clean (no
    ``np.int64`` leaking through) and restorable into a twin running the
    other backend with identical subsequent behavior.  Backend equivalence
    itself is pinned op-for-op in ``tests/test_sketch_vectorized.py``;
    this class pins the on-disk checkpoint form the sampled-fidelity
    executor writes.
    """

    _sketch_keys = st.lists(st.integers(0, 31), min_size=1, max_size=60)

    @staticmethod
    def _forced_build(factory, fast: bool):
        from repro import fastpath

        with fastpath.forced(fast):
            return factory()

    @staticmethod
    def _factories():
        from repro.sketch.count_min import CountMinSketch, SketchConfig
        from repro.sketch.counting_bloom import CountingBloomFilter

        config = SketchConfig(
            num_hashes=4, counters_per_hash=32, counter_width_bits=6
        )
        return [
            lambda: CountMinSketch(config),
            lambda: CountingBloomFilter(
                num_counters=64, num_hashes=3, counter_width_bits=5, seed=2
            ),
        ]

    @settings(max_examples=25, deadline=None)
    @given(prefix=_sketch_keys, suffix=_sketch_keys, fast_source=st.booleans())
    def test_pickled_checkpoint_crosses_backends(
        self, prefix, suffix, fast_source
    ):
        import json

        for factory in self._factories():
            source = self._forced_build(factory, fast=fast_source)
            for key in prefix:
                source.update(key)
            checkpoint = pickle.loads(pickle.dumps(source.snapshot()))
            # JSON round-trip proves every leaf is plain Python data.
            assert json.loads(json.dumps(checkpoint)) == checkpoint

            twin = self._forced_build(factory, fast=not fast_source)
            twin.restore(checkpoint)
            for key in suffix:
                assert twin.update(key) == source.update(key)
            assert twin.snapshot() == source.snapshot()
            assert [twin.estimate(k) for k in range(32)] == [
                source.estimate(k) for k in range(32)
            ]

    @settings(max_examples=20, deadline=None)
    @given(prefix=_events, suffix=_events)
    def test_comet_checkpoint_crosses_backends(self, prefix, suffix):
        """The whole chain: CoMeT's counter tables (CMS-backed) checkpointed
        under one backend, restored under the other, same decisions after."""
        from repro import fastpath

        with fastpath.forced(True):
            original = _attached("comet")
        _apply(original, prefix, base_cycle=0)
        checkpoint = pickle.loads(pickle.dumps(original.snapshot()))

        with fastpath.forced(False):
            twin = _attached("comet")
        twin.restore(checkpoint)
        assert twin.snapshot() == original.snapshot()

        seen = len(original.controller.outputs)
        _apply(original, suffix, base_cycle=len(prefix))
        _apply(twin, suffix, base_cycle=len(prefix))
        assert twin.controller.outputs == original.controller.outputs[seen:]
        assert twin.snapshot() == original.snapshot()
