"""Tests for CoMeT's configuration and derived parameters."""

import pytest

from repro.core.config import CoMeTConfig


class TestNPR:
    def test_equation_one(self):
        """NPR = NRH / (k + 1) — Equation 1 of the paper."""
        assert CoMeTConfig(nrh=1000, reset_period_divider=3).npr == 250
        assert CoMeTConfig(nrh=1000, reset_period_divider=1).npr == 500
        assert CoMeTConfig(nrh=125, reset_period_divider=3).npr == 31

    def test_npr_for_all_paper_thresholds(self):
        for nrh, expected in [(1000, 250), (500, 125), (250, 62), (125, 31)]:
            assert CoMeTConfig(nrh=nrh).npr == expected

    def test_counter_width_matches_paper(self):
        """Counter widths: 8 bits at NRH=1K down to 5 bits at NRH=125 (Table 4)."""
        assert CoMeTConfig(nrh=1000).counter_width_bits == 8
        assert CoMeTConfig(nrh=500).counter_width_bits == 7
        assert CoMeTConfig(nrh=250).counter_width_bits == 6
        assert CoMeTConfig(nrh=125).counter_width_bits == 5

    def test_invalid_nrh(self):
        with pytest.raises(ValueError):
            CoMeTConfig(nrh=0)

    def test_too_large_divider_rejected(self):
        with pytest.raises(ValueError):
            CoMeTConfig(nrh=3, reset_period_divider=5)


class TestStorage:
    def test_default_geometry(self):
        config = CoMeTConfig(nrh=1000)
        assert config.num_hashes == 4
        assert config.counters_per_hash == 512
        assert config.total_ct_counters == 2048
        assert config.rat_entries == 128

    def test_ct_storage_matches_table4(self):
        """CT storage: 64 KiB at NRH=1K ... 40 KiB at NRH=125 for 32 banks."""
        expected = {1000: 64.0, 500: 56.0, 250: 48.0, 125: 40.0}
        for nrh, kib in expected.items():
            config = CoMeTConfig(nrh=nrh)
            assert config.ct_storage_bits_per_bank * 32 / 8 / 1024 == pytest.approx(kib)

    def test_rat_storage_matches_table4(self):
        """RAT storage: 12.5 KiB at NRH=1K ... 11 KiB at NRH=125 for 32 banks."""
        expected = {1000: 12.5, 500: 12.0, 250: 11.5, 125: 11.0}
        for nrh, kib in expected.items():
            config = CoMeTConfig(nrh=nrh)
            assert config.rat_storage_bits_per_bank * 32 / 8 / 1024 == pytest.approx(kib)

    def test_total_storage_includes_history(self):
        config = CoMeTConfig(nrh=1000)
        assert config.storage_bits_per_bank == (
            config.ct_storage_bits_per_bank
            + config.rat_storage_bits_per_bank
            + config.rat_miss_history_length
        )


class TestOtherParameters:
    def test_reset_period(self):
        config = CoMeTConfig(nrh=1000, reset_period_divider=3)
        assert config.reset_period_cycles(3_000_000) == 1_000_000

    def test_early_refresh_threshold(self):
        config = CoMeTConfig(nrh=1000)
        # 25% of a 256-entry history vector (Section 7.1.3).
        assert config.early_refresh_threshold == 64

    def test_early_refresh_threshold_fraction_bounds(self):
        with pytest.raises(ValueError):
            CoMeTConfig(nrh=1000, early_refresh_threshold_fraction=1.5)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CoMeTConfig(nrh=1000, num_hashes=0)
        with pytest.raises(ValueError):
            CoMeTConfig(nrh=1000, rat_entries=0)
        with pytest.raises(ValueError):
            CoMeTConfig(nrh=1000, reset_period_divider=0)
