"""Tests for the REGA and BlockHammer mitigations."""

import pytest

from repro.dram.config import DRAMConfig
from repro.mitigations.blockhammer import BlockHammer, BlockHammerConfig
from repro.mitigations.rega import REGA, REGAConfig
from tests.conftest import FakeController, make_address


class TestREGAConfig:
    def test_no_inflation_at_high_threshold(self):
        assert REGAConfig(nrh=1000).extra_activation_cycles == 0
        assert REGAConfig(nrh=4000).extra_activation_cycles == 0

    def test_inflation_grows_at_low_thresholds(self):
        extra_500 = REGAConfig(nrh=500).extra_activation_cycles
        extra_250 = REGAConfig(nrh=250).extra_activation_cycles
        extra_125 = REGAConfig(nrh=125).extra_activation_cycles
        assert 0 < extra_500 < extra_250 < extra_125

    def test_refreshes_per_activation(self):
        assert REGAConfig(nrh=1000).refreshes_per_activation == 1
        assert REGAConfig(nrh=125).refreshes_per_activation == 8


class TestREGA:
    def test_adjust_dram_config_inflates_trc(self):
        rega = REGA(nrh=125)
        base = DRAMConfig()
        adjusted = rega.adjust_dram_config(base)
        assert adjusted.timing.tRC > base.timing.tRC
        assert adjusted.timing.tRAS > base.timing.tRAS

    def test_adjust_dram_config_noop_at_1k(self):
        rega = REGA(nrh=1000)
        base = DRAMConfig()
        assert rega.adjust_dram_config(base) is base

    def test_activation_reports_inline_victim_refreshes(self, tiny_dram_config):
        controller = FakeController(dram_config=tiny_dram_config)
        rega = REGA(nrh=125)
        rega.attach(controller)
        address = make_address(tiny_dram_config, row=10)
        rega.on_activation(0, address, is_preventive=False)
        refreshed_rows = {a.row for _, a in controller.dram.row_refreshes}
        assert refreshed_rows == {9, 11}

    def test_no_preventive_refresh_requests(self, tiny_dram_config):
        controller = FakeController(dram_config=tiny_dram_config)
        rega = REGA(nrh=125)
        rega.attach(controller)
        address = make_address(tiny_dram_config, row=10)
        for cycle in range(100):
            rega.on_activation(cycle, address, is_preventive=False)
        assert controller.preventive_refreshes == []

    def test_storage_report(self):
        report = REGA(nrh=125).storage_report()
        assert report["total_KiB"] == 0.0
        assert report["dram_area_overhead_fraction"] == pytest.approx(0.0206)


class TestBlockHammerConfig:
    def test_blacklist_threshold(self):
        assert BlockHammerConfig(nrh=1000).blacklist_threshold == 500
        assert BlockHammerConfig(nrh=125, blacklist_fraction=0.5).blacklist_threshold == 62


class TestBlockHammer:
    def make(self, tiny_dram_config, nrh=125, **overrides):
        controller = FakeController(dram_config=tiny_dram_config)
        mechanism = BlockHammer(nrh=nrh, config=BlockHammerConfig(nrh=nrh, **overrides))
        mechanism.attach(controller)
        return mechanism, controller

    def test_benign_row_not_throttled(self, tiny_dram_config):
        blockhammer, _ = self.make(tiny_dram_config)
        address = make_address(tiny_dram_config, row=10)
        for cycle in range(10):
            blockhammer.on_activation(cycle, address, is_preventive=False)
        assert blockhammer.act_allowed_cycle(address, 100) == 100
        assert blockhammer.stats.throttled_activations == 0

    def test_hot_row_gets_throttled(self, tiny_dram_config):
        blockhammer, _ = self.make(tiny_dram_config)
        address = make_address(tiny_dram_config, row=10)
        threshold = blockhammer.config.blacklist_threshold
        cycle = 0
        for _ in range(threshold + 1):
            blockhammer.on_activation(cycle, address, is_preventive=False)
            cycle += 1
        allowed = blockhammer.act_allowed_cycle(address, cycle)
        assert allowed > cycle
        assert blockhammer.stats.throttled_activations >= 1

    def test_throttle_gap_bounds_activation_rate(self, tiny_dram_config):
        """The enforced gap keeps a blacklisted row below NRH per refresh window."""
        blockhammer, _ = self.make(tiny_dram_config)
        gap = blockhammer._throttle_gap_cycles
        window = tiny_dram_config.tREFW
        max_extra_acts = window // gap
        assert blockhammer.config.blacklist_threshold + max_extra_acts <= blockhammer.nrh

    def test_other_rows_unaffected_by_blacklisting(self, tiny_dram_config):
        blockhammer, _ = self.make(tiny_dram_config)
        hot = make_address(tiny_dram_config, row=10)
        cold = make_address(tiny_dram_config, row=200)
        cycle = 0
        for _ in range(blockhammer.config.blacklist_threshold + 1):
            blockhammer.on_activation(cycle, hot, is_preventive=False)
            cycle += 1
        assert blockhammer.act_allowed_cycle(cold, cycle) == cycle

    def test_epoch_rollover_clears_old_history(self, tiny_dram_config):
        blockhammer, _ = self.make(tiny_dram_config)
        address = make_address(tiny_dram_config, row=10)
        threshold = blockhammer.config.blacklist_threshold
        for cycle in range(threshold + 1):
            blockhammer.on_activation(cycle, address, is_preventive=False)
        # Two epoch lengths later the filters have rolled over twice and the
        # row is no longer blacklisted.
        late = 2 * blockhammer._epoch_length + 10
        blockhammer.on_activation(late, address, is_preventive=False)
        blockhammer.on_activation(late + 1, address, is_preventive=False)
        assert blockhammer.act_allowed_cycle(address, late + 2) == late + 2

    def test_preventive_activations_also_tracked(self, tiny_dram_config):
        blockhammer, _ = self.make(tiny_dram_config)
        address = make_address(tiny_dram_config, row=10)
        for cycle in range(200):
            blockhammer.on_activation(cycle, address, is_preventive=True)
        assert blockhammer.stats.observed_activations == 200

    def test_storage_bits(self, tiny_dram_config):
        blockhammer, _ = self.make(tiny_dram_config)
        expected = 2 * blockhammer.config.num_counters * blockhammer.config.counter_width_bits
        assert blockhammer.storage_bits_per_bank() == expected
