"""Backend-conformance suite for the campaign work queues.

One shared test class defines the queue contract — FIFO order, priority
order, claim/ack, lease-based reclaim, dedup-by-key, no double issue under
concurrent claimers — and every registered backend subclasses it (the
frontera pattern: interchangeable implementations proven interchangeable
by running identical tests against each).
"""

import threading

import pytest

from repro.campaign import (
    WorkItem,
    WorkQueue,
    create_backend,
    queue_backend_catalog,
    queue_backend_names,
)


class FakeClock:
    """Injectable time source so lease expiry needs no sleeping."""

    def __init__(self, now: float = 1_000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_items(n, priority=0, prefix="cell"):
    return [
        WorkItem(key=f"{prefix}-{i:03d}", payload=f"payload-{i}", priority=priority)
        for i in range(n)
    ]


class QueueContract:
    """The behavior every backend must exhibit; subclasses pick the backend."""

    backend = ""

    def make_queue(self, tmp_path, clock) -> WorkQueue:
        raise NotImplementedError

    @pytest.fixture
    def clock(self):
        return FakeClock()

    @pytest.fixture
    def queue(self, tmp_path, clock):
        return self.make_queue(tmp_path, clock)

    # ------------------------------------------------------------------ #
    # Registry
    # ------------------------------------------------------------------ #
    def test_backend_is_registered(self):
        assert self.backend in queue_backend_names()
        row = next(
            r for r in queue_backend_catalog() if r["backend"] == self.backend
        )
        assert row["description"]

    # ------------------------------------------------------------------ #
    # Ordering
    # ------------------------------------------------------------------ #
    def test_fifo_within_priority_class(self, queue):
        items = make_items(5)
        assert queue.put(items) == 5
        claimed = [queue.claim("w0").key for _ in range(5)]
        assert claimed == [item.key for item in items]
        assert queue.claim("w0") is None

    def test_higher_priority_drains_first(self, queue):
        queue.put(make_items(2, priority=0, prefix="low"))
        queue.put(make_items(2, priority=5, prefix="high"))
        queue.put(make_items(1, priority=2, prefix="mid"))
        order = [queue.claim("w0").key for _ in range(5)]
        assert order == ["high-000", "high-001", "mid-000", "low-000", "low-001"]

    # ------------------------------------------------------------------ #
    # Dedup
    # ------------------------------------------------------------------ #
    def test_put_dedupes_by_key_across_states(self, queue):
        items = make_items(3)
        assert queue.put(items) == 3
        # Re-putting pending items adds nothing.
        assert queue.put(items) == 0
        claimed = queue.claim("w0", lease=60.0)
        # ... nor claimed items ...
        assert queue.put([claimed]) == 0
        assert queue.ack(claimed.key, "w0")
        # ... nor done items (the resume-idempotence guarantee).
        assert queue.put(items) == 0
        assert queue.counts().outstanding == 2

    # ------------------------------------------------------------------ #
    # Claim / ack lifecycle
    # ------------------------------------------------------------------ #
    def test_claim_ack_lifecycle_counts(self, queue):
        queue.put(make_items(2))
        assert queue.counts() == (2, 0, 0)
        item = queue.claim("w0")
        assert queue.counts() == (1, 1, 0)
        assert queue.ack(item.key, "w0") is True
        assert queue.counts() == (1, 0, 1)
        # Acking twice (or acking an unclaimed key) changes nothing.
        assert queue.ack(item.key, "w0") is False
        assert queue.ack("no-such-key", "w0") is False
        assert queue.counts() == (1, 0, 1)
        assert len(queue) == 1

    def test_claim_empty_returns_none(self, queue):
        assert queue.claim("w0") is None

    def test_ack_requires_lease_holder(self, queue):
        queue.put(make_items(1))
        item = queue.claim("w0")
        assert queue.ack(item.key, "imposter") is False
        assert queue.counts().claimed == 1
        assert queue.ack(item.key, "w0") is True

    # ------------------------------------------------------------------ #
    # Lease expiry / reclaim
    # ------------------------------------------------------------------ #
    def test_reclaim_on_lease_expiry(self, queue, clock):
        queue.put(make_items(1))
        item = queue.claim("dead-worker", lease=30.0)
        # Lease still live: nothing to reclaim, nothing claimable.
        assert queue.reclaim_expired() == 0
        assert queue.claim("w1") is None
        clock.advance(31.0)
        assert queue.reclaim_expired() == 1
        assert queue.counts() == (1, 0, 0)
        reissued = queue.claim("w1", lease=30.0)
        assert reissued is not None and reissued.key == item.key
        # The dead worker's lease is gone: its ack must be refused, the
        # new holder's accepted (at-least-once delivery, single ack).
        assert queue.ack(item.key, "dead-worker") is False
        assert queue.ack(item.key, "w1") is True

    def test_reclaimed_item_keeps_queue_position(self, queue, clock):
        queue.put(make_items(2, priority=3, prefix="high"))
        queue.put(make_items(1, priority=0, prefix="low"))
        first = queue.claim("dead", lease=10.0)
        assert first.key == "high-000"
        clock.advance(11.0)
        assert queue.reclaim_expired() == 1
        # The reclaimed high-priority item still outranks the low one.
        order = [queue.claim("w1").key for _ in range(3)]
        assert order == ["high-000", "high-001", "low-000"]

    # ------------------------------------------------------------------ #
    # Concurrency
    # ------------------------------------------------------------------ #
    def test_concurrent_claimers_never_double_issue(self, queue):
        total = 24
        queue.put(make_items(total))
        issued = []
        issued_lock = threading.Lock()

        def claimer(worker):
            while True:
                item = queue.claim(worker, lease=300.0)
                if item is None:
                    return
                with issued_lock:
                    issued.append(item.key)
                queue.ack(item.key, worker)

        threads = [
            threading.Thread(target=claimer, args=(f"w{i}",)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(issued) == total
        assert len(set(issued)) == total, "an item was issued to two workers"
        assert queue.counts() == (0, 0, total)


class TestMemoryQueue(QueueContract):
    backend = "memory"

    def make_queue(self, tmp_path, clock):
        return create_backend("memory", clock=clock)


class PersistentQueueContract(QueueContract):
    """Extra contract for the multi-process backends: state survives reopen."""

    def test_pending_items_survive_reopen(self, tmp_path, clock):
        queue = self.make_queue(tmp_path, clock)
        queue.put(make_items(3))
        item = queue.claim("w0")
        queue.ack(item.key, "w0")

        reopened = self.make_queue(tmp_path, clock)
        assert reopened.counts() == (2, 0, 1)
        # Order is preserved across the reopen, and dedup still sees done.
        assert reopened.put(make_items(3)) == 0
        assert reopened.claim("w1").key == "cell-001"

    def test_claims_survive_reopen_until_lease_expires(self, tmp_path, clock):
        queue = self.make_queue(tmp_path, clock)
        queue.put(make_items(1))
        queue.claim("crashed-worker", lease=30.0)

        reopened = self.make_queue(tmp_path, clock)
        assert reopened.counts().claimed == 1
        assert reopened.claim("w1") is None
        clock.advance(31.0)
        assert reopened.reclaim_expired() == 1
        assert reopened.claim("w1").key == "cell-000"


class TestDirectoryQueue(PersistentQueueContract):
    backend = "directory"

    def make_queue(self, tmp_path, clock):
        return create_backend("directory", path=tmp_path / "queue", clock=clock)


class TestSqliteQueue(PersistentQueueContract):
    backend = "sqlite"

    def make_queue(self, tmp_path, clock):
        return create_backend("sqlite", path=tmp_path / "queue.sqlite", clock=clock)


class TestRegistry:
    def test_all_three_backends_registered(self):
        assert queue_backend_names() == ["directory", "memory", "sqlite"]

    def test_unknown_backend_is_a_clean_error(self):
        with pytest.raises(KeyError, match="registered backends"):
            create_backend("rabbitmq")

    def test_duplicate_registration_rejected(self):
        from repro.campaign.queue import register_backend

        class Dup(WorkQueue):
            name = "memory"

            def put(self, items):  # pragma: no cover - never called
                return 0

            def claim(self, worker, lease=60.0):  # pragma: no cover
                return None

            def ack(self, key, worker):  # pragma: no cover
                return False

            def reclaim_expired(self):  # pragma: no cover
                return 0

            def counts(self):  # pragma: no cover
                return None

        with pytest.raises(ValueError, match="already registered"):
            register_backend(Dup)
