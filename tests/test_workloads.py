"""Tests for the synthetic workload suite and attack generators."""

import pytest

from repro.dram.address import AddressMapper
from repro.workloads.attacks import (
    comet_targeted_attack,
    hydra_targeted_attack,
    single_row_hammer,
    traditional_rowhammer_attack,
)
from repro.workloads.suite import (
    WORKLOAD_SUITE,
    build_multicore_traces,
    build_trace,
    workload_names,
    workload_spec,
    workloads_by_category,
)
from repro.workloads.synthetic import SyntheticWorkloadGenerator, WorkloadSpec


class TestWorkloadSpec:
    def test_average_bubble_from_rbmpki(self):
        assert WorkloadSpec("x", rbmpki=10.0).average_bubble == pytest.approx(99.0)
        assert WorkloadSpec("x", rbmpki=1.0).average_bubble == pytest.approx(999.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WorkloadSpec("x", rbmpki=0)
        with pytest.raises(ValueError):
            WorkloadSpec("x", rbmpki=1, row_locality=1.0)
        with pytest.raises(ValueError):
            WorkloadSpec("x", rbmpki=1, write_fraction=2.0)
        with pytest.raises(ValueError):
            WorkloadSpec("x", rbmpki=1, bank_fraction=0.0)


class TestSyntheticGenerator:
    def test_trace_length(self, small_dram_config):
        spec = WorkloadSpec("t", rbmpki=10, footprint_rows=64)
        trace = SyntheticWorkloadGenerator(spec, small_dram_config).generate(500)
        assert len(trace) == 500

    def test_deterministic_for_seed(self, small_dram_config):
        spec = WorkloadSpec("t", rbmpki=10, footprint_rows=64)
        a = SyntheticWorkloadGenerator(spec, small_dram_config, seed=1).generate(200)
        b = SyntheticWorkloadGenerator(spec, small_dram_config, seed=1).generate(200)
        assert [(e.bubble_count, e.address) for e in a] == [
            (e.bubble_count, e.address) for e in b
        ]

    def test_different_seeds_differ(self, small_dram_config):
        spec = WorkloadSpec("t", rbmpki=10, footprint_rows=64)
        a = SyntheticWorkloadGenerator(spec, small_dram_config, seed=1).generate(200)
        b = SyntheticWorkloadGenerator(spec, small_dram_config, seed=2).generate(200)
        assert [e.address for e in a] != [e.address for e in b]

    def test_rbmpki_reflected_in_bubbles(self, small_dram_config):
        high = WorkloadSpec("hi", rbmpki=25, footprint_rows=64)
        low = WorkloadSpec("lo", rbmpki=0.5, footprint_rows=64)
        high_trace = SyntheticWorkloadGenerator(high, small_dram_config).generate(500)
        low_trace = SyntheticWorkloadGenerator(low, small_dram_config).generate(500)
        assert (
            high_trace.statistics().accesses_per_kilo_instruction
            > 5 * low_trace.statistics().accesses_per_kilo_instruction
        )

    def test_footprint_respected(self, small_dram_config):
        spec = WorkloadSpec("t", rbmpki=10, footprint_rows=16, row_locality=0.0)
        trace = SyntheticWorkloadGenerator(spec, small_dram_config).generate(2000)
        mapper = AddressMapper(small_dram_config)
        rows = {mapper.decode(e.address).row for e in trace}
        assert len(rows) <= 16

    def test_write_fraction(self, small_dram_config):
        spec = WorkloadSpec("t", rbmpki=10, write_fraction=0.5, footprint_rows=64)
        trace = SyntheticWorkloadGenerator(spec, small_dram_config).generate(3000)
        stats = trace.statistics()
        assert stats.num_writes / stats.num_entries == pytest.approx(0.5, abs=0.07)

    def test_locality_creates_row_hits(self, small_dram_config):
        mapper = AddressMapper(small_dram_config)

        def consecutive_same_row_fraction(locality):
            spec = WorkloadSpec("t", rbmpki=10, row_locality=locality, footprint_rows=256)
            trace = SyntheticWorkloadGenerator(spec, small_dram_config).generate(2000)
            decoded = [mapper.decode(e.address) for e in trace]
            same = sum(
                1
                for a, b in zip(decoded, decoded[1:])
                if a.row == b.row and a.bank_key == b.bank_key
            )
            return same / (len(decoded) - 1)

        assert consecutive_same_row_fraction(0.9) > consecutive_same_row_fraction(0.1) + 0.3

    def test_invalid_request_count(self, small_dram_config):
        spec = WorkloadSpec("t", rbmpki=10)
        with pytest.raises(ValueError):
            SyntheticWorkloadGenerator(spec, small_dram_config).generate(0)


class TestSuite:
    def test_61_workloads(self):
        assert len(WORKLOAD_SUITE) == 61

    def test_category_sizes_match_table3(self):
        categories = workloads_by_category()
        assert len(categories["high"]) == 14
        assert len(categories["medium"]) == 20
        assert len(categories["low"]) == 27

    def test_rbmpki_within_category_ranges(self):
        for name, spec in WORKLOAD_SUITE.items():
            if spec.category == "high":
                assert spec.rbmpki >= 10, name
            elif spec.category == "medium":
                assert 2 <= spec.rbmpki < 10, name
            else:
                assert spec.rbmpki < 2, name

    def test_workload_names_filter(self):
        assert set(workload_names("high")) == set(workloads_by_category()["high"])
        assert len(workload_names()) == 61

    def test_workload_spec_lookup(self):
        assert workload_spec("429.mcf").category == "high"
        with pytest.raises(KeyError):
            workload_spec("not_a_workload")

    def test_build_trace(self, small_dram_config):
        trace = build_trace("519.lbm", num_requests=300, dram_config=small_dram_config)
        assert len(trace) == 300
        assert trace.name == "519.lbm"

    def test_build_multicore_traces(self, small_dram_config):
        traces = build_multicore_traces(
            "450.soplex", num_cores=4, num_requests=100, dram_config=small_dram_config
        )
        assert len(traces) == 4
        # Copies use different seeds and must not be byte-identical.
        assert [e.address for e in traces[0]] != [e.address for e in traces[1]]


class TestAttacks:
    def test_traditional_attack_forces_row_conflicts(self, small_dram_config):
        mapper = AddressMapper(small_dram_config)
        trace = traditional_rowhammer_attack(
            num_requests=1000, dram_config=small_dram_config, aggressor_rows_per_bank=4
        )
        decoded = [mapper.decode(e.address) for e in trace]
        same_row_consecutive = sum(
            1
            for a, b in zip(decoded, decoded[1:])
            if a.bank_key == b.bank_key and a.row == b.row
        )
        assert same_row_consecutive == 0

    def test_traditional_attack_touches_all_banks(self, small_dram_config):
        mapper = AddressMapper(small_dram_config)
        trace = traditional_rowhammer_attack(num_requests=2000, dram_config=small_dram_config)
        banks = {mapper.decode(e.address).bank_key for e in trace}
        org = small_dram_config.organization
        assert len(banks) == org.ranks_per_channel * org.banks_per_rank

    def test_single_row_hammer_counts(self, small_dram_config):
        mapper = AddressMapper(small_dram_config)
        trace = single_row_hammer(target_row=40, activations=50, dram_config=small_dram_config)
        target_accesses = sum(1 for e in trace if mapper.decode(e.address).row == 40)
        assert target_accesses == 50

    def test_comet_targeted_attack_touches_many_rows(self, small_dram_config):
        mapper = AddressMapper(small_dram_config)
        trace = comet_targeted_attack(
            num_requests=3000, distinct_rows=64, npr=8, dram_config=small_dram_config
        )
        rows = {mapper.decode(e.address).row for e in trace}
        assert len(rows) >= 32
        assert len(trace) == 3000

    def test_hydra_targeted_attack_spreads_over_groups(self, small_dram_config):
        mapper = AddressMapper(small_dram_config)
        trace = hydra_targeted_attack(
            num_requests=2000, rows_per_group=64, dram_config=small_dram_config
        )
        groups = {mapper.decode(e.address).row // 64 for e in trace}
        assert len(groups) > 10

    def test_attack_traces_are_reads(self, small_dram_config):
        trace = traditional_rowhammer_attack(num_requests=100, dram_config=small_dram_config)
        assert all(not e.is_write for e in trace)
