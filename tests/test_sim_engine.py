"""Tests for the event-driven simulation kernel (:mod:`repro.sim.engine`)."""

import math

import pytest

from repro.controller.controller import MemoryController
from repro.cpu.trace import Trace
from repro.sim.engine import EventKernel, SimulationDeadlockError
from repro.sim.system import System, SystemConfig


def _linear_trace(n=64, bubbles=10, stride=0x40, name="lin"):
    return Trace.from_tuples([(bubbles, stride * i) for i in range(n)], name=name)


@pytest.fixture
def system(tiny_dram_config):
    trace = _linear_trace()
    return System(
        [trace], config=SystemConfig(dram=tiny_dram_config, verify_security=False)
    )


class TestEventOrdering:
    def test_time_never_goes_backwards(self, tiny_dram_config):
        trace = _linear_trace(n=200, bubbles=3)
        system = System(
            [trace], config=SystemConfig(dram=tiny_dram_config, verify_security=False)
        )
        kernel = EventKernel(system.cores, system.controller)
        times = []
        original = kernel._pop_live

        def recording_pop():
            entry = original()
            if entry is not None:
                times.append(max(kernel.now, entry[0]))
            return entry

        kernel._pop_live = recording_pop
        kernel.run()
        assert times == sorted(times)
        assert system.cores[0].finished

    def test_cores_win_ties_against_controller(self):
        # Priorities are what encode the seed scheduler's `core <= controller`
        # tie-break; the heap entries must sort cores first at equal times.
        import heapq

        from repro.sim.engine import _PRIORITY_CONTROLLER, _PRIORITY_CORE

        heap = []
        heapq.heappush(heap, (10.0, _PRIORITY_CONTROLLER, -1, 0))
        heapq.heappush(heap, (10.0, _PRIORITY_CORE, 0, 0))
        assert heapq.heappop(heap)[1] == _PRIORITY_CORE

    def test_lowest_core_id_wins_ties(self, tiny_dram_config):
        traces = [_linear_trace(name="a"), _linear_trace(name="b")]
        system = System(
            traces, config=SystemConfig(dram=tiny_dram_config, verify_security=False)
        )
        kernel = EventKernel(system.cores, system.controller)
        first_core_events = []
        original = kernel._pop_live

        def recording_pop():
            entry = original()
            if entry is not None and entry[1] == 0:
                first_core_events.append(entry)
            return entry

        kernel._pop_live = recording_pop
        kernel.run()
        # Both cores issue their first dispatch at the same cycle; core 0 first.
        first_time = first_core_events[0][0]
        same_time = [e for e in first_core_events if e[0] == first_time]
        assert [e[2] for e in same_time] == sorted(e[2] for e in same_time)

    def test_run_is_deterministic(self, tiny_dram_config):
        def run_once():
            trace = _linear_trace(n=300, bubbles=2)
            system = System(
                [trace],
                config=SystemConfig(dram=tiny_dram_config, verify_security=False),
            )
            return system.run()

        first, second = run_once(), run_once()
        assert first.summary() == second.summary()
        assert first.per_core_ipc == second.per_core_ipc
        assert first.steps == second.steps


class TestScheduledCallbacks:
    def test_mitigation_style_callback_fires_at_cycle(self, system):
        kernel = EventKernel(system.cores, system.controller)
        fired = []
        kernel.schedule(50, lambda now: fired.append(now))
        kernel.run()
        assert len(fired) == 1
        assert fired[0] >= 50.0

    def test_callback_in_past_clamps_to_now(self, system):
        kernel = EventKernel(system.cores, system.controller)
        fired = []

        def late_registration(now):
            kernel.schedule(0, lambda inner_now: fired.append((now, inner_now)))

        kernel.schedule(40, late_registration)
        kernel.run()
        assert len(fired) == 1
        registered_at, fired_at = fired[0]
        assert fired_at >= registered_at

    def test_mitigation_register_events_hook_called(self, tiny_dram_config):
        from repro.mitigations.para import PARA

        calls = []

        class EventfulPARA(PARA):
            def register_events(self, kernel):
                calls.append(kernel)

        trace = _linear_trace()
        system = System(
            [trace],
            mitigation=EventfulPARA(125),
            config=SystemConfig(dram=tiny_dram_config, verify_security=False),
        )
        system.run()
        assert len(calls) == 1
        assert isinstance(calls[0], EventKernel)


class TestStallPaths:
    """Regression tests for the blocked-core/empty-controller stall.

    The seed loop papered over this state with a one-cycle time nudge
    (``now += 1.0``); the kernel must instead terminate on it provably —
    recovering when a retry can succeed and raising when nothing can move.
    """

    def test_transient_enqueue_rejection_recovers(self, tiny_dram_config, monkeypatch):
        # Reject the very first enqueue: the core blocks while the controller
        # holds no work at all — exactly the state the nudge used to paper
        # over.  The kernel's stall recovery must retry and run to completion.
        real_enqueue = MemoryController.enqueue
        rejected = {"count": 0}

        def flaky_enqueue(self, request, cycle):
            if rejected["count"] == 0:
                rejected["count"] += 1
                return False
            return real_enqueue(self, request, cycle)

        monkeypatch.setattr(MemoryController, "enqueue", flaky_enqueue)
        trace = _linear_trace(n=32)
        system = System(
            [trace], config=SystemConfig(dram=tiny_dram_config, verify_security=False)
        )
        result = system.run()
        assert rejected["count"] == 1
        assert result.per_core_instructions[0] == trace.total_instructions
        assert system.cores[0].finished

    def test_permanent_rejection_raises_instead_of_spinning(
        self, tiny_dram_config, monkeypatch
    ):
        monkeypatch.setattr(
            MemoryController, "enqueue", lambda self, request, cycle: False
        )
        trace = _linear_trace(n=4)
        system = System(
            [trace], config=SystemConfig(dram=tiny_dram_config, verify_security=False)
        )
        with pytest.raises(SimulationDeadlockError, match="wedged"):
            system.run()

    def test_deadlock_error_names_blocked_cores(self, tiny_dram_config, monkeypatch):
        monkeypatch.setattr(
            MemoryController, "enqueue", lambda self, request, cycle: False
        )
        trace = _linear_trace(n=4)
        system = System(
            [trace], config=SystemConfig(dram=tiny_dram_config, verify_security=False)
        )
        with pytest.raises(SimulationDeadlockError, match=r"blocked cores \[0\]"):
            system.run()


class _StuckCore:
    """Kernel-level core double: permanently blocked, counts its retries."""

    def __init__(self, core_id):
        self.core_id = core_id
        self.finished = False
        self.has_blocked_request = True
        self.retries = 0
        self.kernel_wakeup = None

    def next_event_cycle(self):
        from repro.sim.engine import NEVER

        return NEVER

    def step(self, now):  # pragma: no cover - blocked cores never step
        raise AssertionError("a blocked core must retry, not step")

    def retry_blocked(self, now):
        self.retries += 1
        return False


class _IdleControllerDouble:
    """Controller double with empty schedulable work but pending requests.

    Models a backend that accepted requests it can never issue — the state
    the deadlock diagnostic must make visible (``pending requests N``).
    """

    current_cycle = 0
    mutations = 0

    def __init__(self, pending=0):
        self._pending = pending

    def add_slot_free_callback(self, callback):
        pass

    def decision_crosses_boundary(self, start, end):
        return False

    def next_decision(self, cycle):
        return None

    def has_work(self):
        return False

    def pending_requests(self):
        return self._pending


class TestDeadlockDiagnostics:
    """The deadlock error must carry everything needed to debug the wedge:
    which cores are blocked, which are merely unfinished, and how many
    requests the controllers still hold."""

    def test_message_lists_core_ids_and_pending_count(self):
        kernel = EventKernel(
            [_StuckCore(0), _StuckCore(1)], _IdleControllerDouble(pending=3)
        )
        with pytest.raises(SimulationDeadlockError) as excinfo:
            kernel.run()
        message = str(excinfo.value)
        assert "unfinished cores [0, 1]" in message
        assert "blocked cores [0, 1]" in message
        assert "pending requests 3" in message

    def test_unblocked_unfinished_cores_reported_separately(self):
        # A core that is unfinished but not blocked (it simply has no next
        # event) must show up in `unfinished` and not in `blocked`.
        waiting = _StuckCore(1)
        waiting.has_blocked_request = False
        kernel = EventKernel([_StuckCore(0), waiting], _IdleControllerDouble())
        with pytest.raises(SimulationDeadlockError) as excinfo:
            kernel.run()
        message = str(excinfo.value)
        assert "unfinished cores [0, 1]" in message
        assert "blocked cores [0]" in message
        assert waiting.retries == 0

    def test_recover_stall_retries_each_blocked_core_exactly_once(self):
        # One recovery sweep before the raise: every blocked core gets one
        # retry — not zero (recoverable stalls must recover) and not more
        # (a hopeless system must not spin).
        cores = [_StuckCore(0), _StuckCore(1), _StuckCore(2)]
        kernel = EventKernel(cores, _IdleControllerDouble())
        with pytest.raises(SimulationDeadlockError):
            kernel.run()
        assert [core.retries for core in cores] == [1, 1, 1]


class TestIntegerTimestamps:
    """Events sourced from integer cycles must keep integer heap times.

    ``engine._as_cycle`` is the one documented float->int conversion point;
    everything upstream of it (core events, controller decisions, integer
    callback cycles) must not smuggle floats onto the heap, where they
    would compare inexactly at large cycle magnitudes."""

    def test_as_cycle_is_the_ceiling(self):
        from repro.sim.engine import _as_cycle

        assert _as_cycle(10) == 10
        assert _as_cycle(10.0) == 10
        assert _as_cycle(10.2) == 11

    def test_heap_times_from_integer_sources_stay_int(self, tiny_dram_config):
        # Core events may be fractional by design (core cycles divided by
        # the CPU:DRAM clock ratio); controller decisions and integer-cycle
        # callbacks are integer sources and must stay exact.
        from repro.sim.engine import _PRIORITY_CORE

        trace = _linear_trace(n=150, bubbles=2)
        system = System(
            [trace], config=SystemConfig(dram=tiny_dram_config, verify_security=False)
        )
        kernel = EventKernel(system.cores, system.controller)
        kernel.schedule(75, lambda now: None)  # integer-cycle callback
        seen_types = set()
        original = kernel._pop_live

        def checking_pop():
            for entry in kernel._heap:
                if entry[1] != _PRIORITY_CORE:
                    seen_types.add(type(entry[0]))
            return original()

        kernel._pop_live = checking_pop
        kernel.run()
        assert system.cores[0].finished
        assert seen_types == {int}


class TestKernelResults:
    def test_steps_counted_and_bounded(self, tiny_dram_config):
        trace = _linear_trace(n=64)
        system = System(
            [trace], config=SystemConfig(dram=tiny_dram_config, verify_security=False)
        )
        result = system.run()
        assert 0 < result.steps < 10_000

    def test_max_steps_stops_the_run(self, tiny_dram_config):
        trace = _linear_trace(n=2000, bubbles=1)
        config = SystemConfig(dram=tiny_dram_config, verify_security=False, max_steps=10)
        system = System([trace], config=config)
        result = system.run()
        assert result.steps == 10
        assert not system.cores[0].finished

    def test_cached_controller_decision_matches_recompute(self, tiny_dram_config):
        """The decision cached at schedule time must issue at the cycle the
        freshly recomputed decision would (see controller.next_decision)."""
        trace = _linear_trace(n=400, bubbles=1)

        def run(force_recheck: bool):
            system = System(
                [trace],
                config=SystemConfig(dram=tiny_dram_config, verify_security=False),
            )
            kernel = EventKernel(system.cores, system.controller)
            if force_recheck:
                original = kernel._schedule_controller

                def always_recheck(index):
                    original(index)
                    kernel._ctl_recheck[index] = True

                kernel._schedule_controller = always_recheck
            final = kernel.run()
            final_cycle = system.controller.drain(int(math.ceil(final)))
            return system._build_result(max(final_cycle, int(math.ceil(final))))

        cached = run(force_recheck=False)
        recomputed = run(force_recheck=True)
        assert cached.summary() == recomputed.summary()
        assert cached.dram_stats == recomputed.dram_stats
