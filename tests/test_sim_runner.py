"""Tests for the experiment-runner helpers."""

import pytest

from repro.core.comet import CoMeT
from repro.mitigations.base import RowHammerMitigation
from repro.mitigations.blockhammer import BlockHammer
from repro.mitigations.graphene import Graphene
from repro.mitigations.hydra import Hydra
from repro.mitigations.none import NoMitigation
from repro.mitigations.para import PARA
from repro.mitigations.rega import REGA
from repro.sim.runner import (
    MITIGATION_FACTORIES,
    build_mitigation,
    default_experiment_config,
)


class TestMitigationFactories:
    def test_all_paper_mechanisms_present(self):
        assert set(MITIGATION_FACTORIES) == {
            "none",
            "comet",
            "graphene",
            "hydra",
            "rega",
            "para",
            "blockhammer",
            "prac",
        }

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("none", NoMitigation),
            ("comet", CoMeT),
            ("graphene", Graphene),
            ("hydra", Hydra),
            ("rega", REGA),
            ("para", PARA),
            ("blockhammer", BlockHammer),
        ],
    )
    def test_factory_builds_right_type(self, name, cls):
        mitigation = build_mitigation(name, nrh=500)
        assert isinstance(mitigation, cls)
        assert isinstance(mitigation, RowHammerMitigation)

    def test_threshold_propagated(self):
        assert build_mitigation("comet", nrh=250).nrh == 250
        assert build_mitigation("graphene", nrh=125).nrh == 125

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown mitigation"):
            build_mitigation("trr", nrh=1000)

    def test_overrides_forwarded(self):
        from repro.core.config import CoMeTConfig

        comet = build_mitigation("comet", nrh=1000, config=CoMeTConfig(nrh=1000, num_hashes=2))
        assert comet.config.num_hashes == 2

    def test_none_ignores_overrides(self):
        assert isinstance(build_mitigation("none", nrh=1000, blast_radius=2), NoMitigation)


class TestDefaultExperimentConfig:
    def test_scaled_down_from_paper_config(self):
        config = default_experiment_config()
        assert config.organization.rows_per_bank < 128 * 1024
        assert config.tREFW < config.timing.tREFW

    def test_dual_rank(self):
        config = default_experiment_config()
        assert config.organization.ranks_per_channel == 2

    def test_refresh_window_spans_multiple_reset_periods(self):
        """The scaled window must still hold k=3 reset periods and several tREFI."""
        config = default_experiment_config()
        assert config.tREFW // 3 > 0
        assert config.tREFW > 4 * config.tREFI

    def test_parameters_overridable(self):
        config = default_experiment_config(rows_per_bank=1024, refresh_window_scale=1 / 64)
        assert config.organization.rows_per_bank == 1024
        assert config.refresh_window_scale == 1 / 64
