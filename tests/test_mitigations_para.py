"""Tests for PARA (probabilistic adjacent-row refresh)."""

import pytest

from repro.mitigations.para import PARA, para_is_feasible, para_refresh_probability
from tests.conftest import make_address


class TestProbability:
    def test_probability_increases_as_threshold_decreases(self):
        p_1k = para_refresh_probability(1000)
        p_125 = para_refresh_probability(125)
        assert p_125 > p_1k

    def test_known_values(self):
        """Values the paper's setup implies: ~0.034 at NRH=1K, ~0.24 at NRH=125."""
        assert para_refresh_probability(1000) == pytest.approx(0.0339, abs=0.002)
        assert para_refresh_probability(125) == pytest.approx(0.2414, abs=0.005)

    def test_guarantee(self):
        """(1 - p)^NRH must not exceed the target failure probability."""
        for nrh in (125, 250, 500, 1000):
            p = para_refresh_probability(nrh, 1e-15)
            assert (1 - p) ** nrh <= 1e-15 * 1.0001

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            para_refresh_probability(0)
        with pytest.raises(ValueError):
            para_refresh_probability(100, 0.0)
        with pytest.raises(ValueError):
            para_refresh_probability(100, 1.5)


class TestFeasibility:
    """Below NRH ~ 50 the derived p makes the preventive-refresh cascade a
    supercritical branching process (p * 2 * blast_radius >= 1): every
    preventive ACT spawns more than one expected follow-on, so the storm
    never dies out.  The constructor refuses to build that configuration."""

    def test_boundary_sits_at_nrh_50(self):
        assert para_is_feasible(50)
        assert not para_is_feasible(49)
        assert all(para_is_feasible(nrh) for nrh in (64, 125, 250, 1000))
        assert not any(para_is_feasible(nrh) for nrh in (32, 20, 1))

    def test_wider_blast_radius_raises_the_boundary(self):
        # Four victims per trigger instead of two: supercritical at p >= 0.25.
        assert para_is_feasible(125, blast_radius=2)
        assert not para_is_feasible(100, blast_radius=2)

    def test_derived_supercritical_probability_rejected(self):
        with pytest.raises(ValueError, match="supercritical"):
            PARA(nrh=32)

    def test_explicit_probability_is_the_callers_choice(self):
        # An explicit p bypasses the guard (short runs and unit tests
        # legitimately explore the storm regime).
        assert PARA(nrh=32, probability=0.66).probability == 0.66


class TestPARA:
    def test_refresh_rate_close_to_probability(self, fake_controller, tiny_dram_config):
        para = PARA(nrh=1000, seed=5)
        para.attach(fake_controller)
        address = make_address(tiny_dram_config, row=50)
        activations = 20_000
        for cycle in range(activations):
            para.on_activation(cycle, address, is_preventive=False)
        triggers = len(fake_controller.preventive_refreshes) / 2  # two victims per trigger
        rate = triggers / activations
        assert rate == pytest.approx(para.probability, rel=0.15)

    def test_preventive_activations_also_sampled(self, fake_controller, tiny_dram_config):
        """Preventive ACTs disturb their neighbours, so PARA samples them too."""
        para = PARA(nrh=125, probability=1.0)
        para.attach(fake_controller)
        address = make_address(tiny_dram_config, row=50)
        para.on_activation(0, address, is_preventive=True)
        assert {a.row for a, _ in fake_controller.preventive_refreshes} == {49, 51}

    def test_probability_one_always_refreshes(self, fake_controller, tiny_dram_config):
        para = PARA(nrh=125, probability=1.0)
        para.attach(fake_controller)
        address = make_address(tiny_dram_config, row=50)
        para.on_activation(0, address, is_preventive=False)
        assert {a.row for a, _ in fake_controller.preventive_refreshes} == {49, 51}

    def test_probability_zero_never_refreshes(self, fake_controller, tiny_dram_config):
        para = PARA(nrh=125, probability=0.0)
        para.attach(fake_controller)
        address = make_address(tiny_dram_config, row=50)
        for cycle in range(1000):
            para.on_activation(cycle, address, is_preventive=False)
        assert fake_controller.preventive_refreshes == []

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            PARA(nrh=125, probability=1.5)

    def test_stateless_storage(self):
        assert PARA(nrh=125).storage_bits_per_bank() == 0

    def test_deterministic_for_seed(self, tiny_dram_config):
        from tests.conftest import FakeController

        def run(seed):
            controller = FakeController(dram_config=tiny_dram_config)
            para = PARA(nrh=500, seed=seed)
            para.attach(controller)
            address = make_address(tiny_dram_config, row=8)
            for cycle in range(500):
                para.on_activation(cycle, address, is_preventive=False)
            return len(controller.preventive_refreshes)

        assert run(11) == run(11)
