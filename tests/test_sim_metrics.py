"""Tests for the performance/energy metrics helpers."""

import pytest

from repro.sim.metrics import (
    energy_overhead_percent,
    geometric_mean,
    normalized_values,
    normalized_weighted_speedup,
    overhead_percent,
    summarize_distribution,
    weighted_speedup,
)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([1, 1, 1]) == pytest.approx(1.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geomean_below_arithmetic_mean(self):
        values = [0.5, 1.0, 1.5]
        assert geometric_mean(values) <= sum(values) / len(values)


class TestNormalization:
    def test_normalized_values(self):
        assert normalized_values([2, 3], [4, 3]) == [0.5, 1.0]

    def test_zero_baseline(self):
        assert normalized_values([2], [0]) == [0.0]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            normalized_values([1], [1, 2])

    def test_overhead_percent(self):
        assert overhead_percent(0.96) == pytest.approx(4.0)
        assert energy_overhead_percent(1.02) == pytest.approx(2.0)


class TestWeightedSpeedup:
    def test_equal_ipcs_give_core_count(self):
        assert weighted_speedup([1.0] * 8, [1.0] * 8) == pytest.approx(8.0)

    def test_slowdown_reduces_speedup(self):
        assert weighted_speedup([0.5, 0.5], [1.0, 1.0]) == pytest.approx(1.0)

    def test_zero_alone_ipc_skipped(self):
        assert weighted_speedup([1.0, 1.0], [1.0, 0.0]) == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])

    def test_normalized_weighted_speedup_homogeneous(self):
        mitigated = [0.9, 0.9, 0.9, 0.9]
        baseline = [1.0, 1.0, 1.0, 1.0]
        assert normalized_weighted_speedup(mitigated, baseline) == pytest.approx(0.9)

    def test_normalized_weighted_speedup_zero_baseline(self):
        assert normalized_weighted_speedup([1.0], [0.0]) == 0.0


class TestDistributionSummary:
    def test_summary_keys(self):
        summary = summarize_distribution([1.0, 2.0, 3.0])
        assert set(summary) == {"min", "p25", "median", "p75", "max", "mean", "geomean"}

    def test_median_and_extremes(self):
        summary = summarize_distribution([3.0, 1.0, 2.0])
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["median"] == 2.0

    def test_percentiles_interpolate(self):
        summary = summarize_distribution([0.0, 1.0])
        assert summary["p25"] == pytest.approx(0.25)
        assert summary["p75"] == pytest.approx(0.75)

    def test_single_value(self):
        summary = summarize_distribution([0.7])
        assert summary["min"] == summary["max"] == summary["median"] == 0.7

    def test_empty(self):
        summary = summarize_distribution([])
        assert summary["mean"] == 0.0

    def test_geomean_zero_when_non_positive_present(self):
        summary = summarize_distribution([0.0, 1.0])
        assert summary["geomean"] == 0.0
