"""Tests for the declarative experiment API (repro.experiment)."""

import json
import warnings

import pytest

from repro.core.config import CoMeTConfig
from repro.cpu.core import CoreConfig
from repro.dram.config import small_test_config
from repro.experiment.codec import SpecCodecError, decode_value, encode_value
from repro.experiment.registry import (
    UnknownMitigationError,
    UnknownWorkloadError,
    mitigation_entry,
    mitigation_names,
    register_mitigation,
    registered_workload_names,
    workload_entry,
)
from repro.experiment.session import RunRecord, Session
from repro.experiment.spec import (
    ExperimentSpec,
    MitigationSpec,
    PlatformSpec,
    WorkloadSpec,
    expand_grid,
)
from repro.mitigations.base import RowHammerMitigation


def simple_spec(**kwargs) -> ExperimentSpec:
    defaults = dict(
        workload=WorkloadSpec(name="502.gcc", num_requests=300),
        mitigation=MitigationSpec(name="comet", nrh=250),
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_all_paper_mechanisms_registered(self):
        assert set(mitigation_names()) == {
            "none",
            "comet",
            "graphene",
            "hydra",
            "rega",
            "para",
            "blockhammer",
            "prac",
        }

    def test_none_metadata_declared_once(self):
        """The baseline's special construction is registry metadata, not
        call-site special-casing."""
        entry = mitigation_entry("none")
        assert entry.takes_nrh is False
        assert entry.seedable is False
        built = entry.build(125, seed=3, blast_radius=2)
        assert type(built).__name__ == "NoMitigation"

    @pytest.mark.parametrize("name", ["para", "blockhammer"])
    def test_randomized_mechanisms_are_seedable(self, name):
        assert mitigation_entry(name).seedable is True

    @pytest.mark.parametrize("name", ["comet", "graphene", "hydra", "rega"])
    def test_deterministic_mechanisms_are_not_seedable(self, name):
        assert mitigation_entry(name).seedable is False

    def test_unknown_mitigation_lists_registered_names(self):
        with pytest.raises(UnknownMitigationError, match="unknown mitigation") as info:
            mitigation_entry("trr")
        message = str(info.value)
        for known in ("comet", "graphene", "para", "none"):
            assert known in message

    def test_unknown_workload_lists_registered_names(self):
        with pytest.raises(UnknownWorkloadError, match="unknown workload") as info:
            workload_entry("600.perlbench")
        message = str(info.value)
        assert "429.mcf" in message
        assert "attack_traditional" in message

    def test_suite_and_attacks_registered(self):
        names = registered_workload_names()
        assert "429.mcf" in names and "mc_stream" in names
        assert registered_workload_names(category="attack") == [
            "attack_comet_targeted",
            "attack_hydra_targeted",
            "attack_single_row",
            "attack_traditional",
        ]

    def test_decorator_registration_roundtrip(self):
        from repro.experiment import registry as registry_module

        @register_mitigation("test_mech_xyz", takes_nrh=True, seedable=True)
        class _TestMech(RowHammerMitigation):
            name = "test_mech_xyz"

            def __init__(self, nrh, seed=0):
                super().__init__(nrh=nrh)
                self.seed = seed

        try:
            entry = mitigation_entry("test_mech_xyz")
            assert entry.cls is _TestMech
            built = entry.build(500, seed=7)
            assert built.nrh == 500 and built.seed == 7
        finally:
            registry_module._MITIGATIONS.pop("test_mech_xyz")

    def test_per_channel_seeding_from_metadata(self):
        instances = MitigationSpec(name="blockhammer", nrh=500).build_instances(3)
        assert [inst._seed for inst in instances] == [0, 1, 2]
        # Deterministic mechanisms never receive a seed kwarg.
        comets = MitigationSpec(name="comet", nrh=500).build_instances(2)
        assert len(comets) == 2 and comets[0] is not comets[1]


# --------------------------------------------------------------------------- #
# Spec construction and validation
# --------------------------------------------------------------------------- #
class TestSpecValidation:
    def test_unknown_mitigation_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown mitigation"):
            MitigationSpec(name="trr", nrh=125)

    def test_unknown_workload_rejected_at_construction(self):
        with pytest.raises(KeyError, match="unknown workload"):
            WorkloadSpec(name="no_such_workload")

    def test_nonpositive_nrh_rejected(self):
        with pytest.raises(ValueError, match="nrh must be positive"):
            MitigationSpec(name="comet", nrh=0)

    def test_overrides_accept_dict_and_normalize(self):
        a = MitigationSpec(name="comet", nrh=125, overrides={"blast_radius": 2})
        b = MitigationSpec(name="comet", nrh=125, overrides=(("blast_radius", 2),))
        assert a == b
        assert a.overrides_dict() == {"blast_radius": 2}

    def test_spec_is_hashable(self):
        spec = simple_spec()
        same = simple_spec()
        assert spec == same
        assert hash(spec) == hash(same)
        assert len({spec, same}) == 1

    def test_override_order_does_not_matter(self):
        a = MitigationSpec(name="para", nrh=125, overrides={"seed": 3, "blast_radius": 2})
        b = MitigationSpec(name="para", nrh=125, overrides={"blast_radius": 2, "seed": 3})
        assert a == b and hash(a) == hash(b)


# --------------------------------------------------------------------------- #
# Serialization
# --------------------------------------------------------------------------- #
class TestSpecSerialization:
    def test_json_round_trip(self):
        spec = simple_spec()
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_round_trip_with_config_override(self):
        config = CoMeTConfig(nrh=250, num_hashes=2, rat_entries=64)
        spec = simple_spec(
            mitigation=MitigationSpec(name="comet", nrh=250, overrides={"config": config})
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.mitigation.overrides_dict()["config"] == config

    def test_dram_override_channel_count_inherited(self):
        """A full DRAMConfig override keeps its own channel count unless the
        channels knob is set explicitly (the grid's scaling axis)."""
        four_channel = small_test_config(rows_per_bank=1024, channels=4)
        inherited = PlatformSpec(dram=four_channel)
        assert inherited.channel_count == 4
        assert inherited.dram_config().organization.channels == 4
        forced = PlatformSpec(dram=four_channel, channels=2)
        assert forced.channel_count == 2
        assert forced.dram_config().organization.channels == 2
        assert PlatformSpec().channel_count == 1

    def test_round_trip_with_platform_overrides(self):
        spec = simple_spec(
            platform=PlatformSpec(
                channels=2,
                dram=small_test_config(rows_per_bank=1024, channels=2),
                core=CoreConfig(width=8),
            )
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.platform.core.width == 8
        assert restored.platform.dram_config().organization.rows_per_bank == 1024

    def test_round_trip_with_mix_and_params(self):
        spec = simple_spec(
            workload=WorkloadSpec(
                name="benign+attack",
                num_requests=600,
                mix=(
                    WorkloadSpec(name="429.mcf", num_requests=600),
                    WorkloadSpec(
                        name="attack_traditional",
                        num_requests=600,
                        params={"aggressor_rows_per_bank": 2},
                    ),
                ),
            ),
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.workload.mix[1].params_dict() == {"aggressor_rows_per_bank": 2}
        assert restored.workload.total_cores == 2

    def test_canonical_hash_stable_across_key_order(self):
        spec = simple_spec()
        data = json.loads(spec.to_json())
        reordered = {key: data[key] for key in reversed(list(data))}
        assert ExperimentSpec.from_dict(reordered).content_hash() == spec.content_hash()

    def test_canonical_hash_pinned(self):
        """The canonical serialization is a cache-key contract: changing it
        silently invalidates every cached result.  Regenerate deliberately
        (and bump SWEEP_CACHE_VERSION) when the schema changes."""
        spec = ExperimentSpec(
            workload=WorkloadSpec(name="429.mcf", num_requests=1000),
            mitigation=MitigationSpec(name="comet", nrh=125),
        )
        assert spec.content_hash() == PINNED_HASH

    def test_hash_differs_when_experiment_differs(self):
        base = simple_spec()
        assert base.content_hash() != simple_spec(
            mitigation=MitigationSpec(name="graphene", nrh=250)
        ).content_hash()
        assert base.content_hash() != simple_spec(
            platform=PlatformSpec(channels=2)
        ).content_hash()

    def test_newer_spec_version_rejected(self):
        data = json.loads(simple_spec().to_json())
        data["spec_version"] = 999
        with pytest.raises(ValueError, match="spec_version 999"):
            ExperimentSpec.from_dict(data)

    def test_codec_refuses_foreign_dataclasses(self):
        with pytest.raises(SpecCodecError, match="only repro"):
            decode_value({"__dataclass__": "os.path:PurePath", "fields": {}})

    def test_codec_round_trips_nested_values(self):
        value = {"config": CoMeTConfig(nrh=500), "flags": (1, 2, 3), "label": "x"}
        assert decode_value(encode_value(value)) == value


# --------------------------------------------------------------------------- #
# Grid expansion
# --------------------------------------------------------------------------- #
class TestExpandGrid:
    def test_baseline_once_per_workload_and_channel(self):
        specs = expand_grid(
            workloads=["429.mcf", "502.gcc"],
            mitigations=["comet", "para"],
            nrhs=[1000, 125],
            channels=[1, 2],
        )
        baselines = [s for s in specs if s.mitigation.name == "none"]
        assert len(baselines) == 4  # 2 workloads x 2 channel counts
        assert all(b.mitigation.nrh == 1 for b in baselines)
        assert all(not b.verify_security for b in baselines)
        assert len(specs) == 4 + 2 * 2 * 2 * 2

    def test_channels_propagate_to_platform(self):
        specs = expand_grid(
            workloads=["mc_stream"], mitigations=["comet"], nrhs=[250], channels=[2]
        )
        assert all(s.platform.channels == 2 for s in specs)

    def test_overrides_attached_to_every_mitigated_spec(self):
        config = CoMeTConfig(nrh=125, num_hashes=2)
        specs = expand_grid(
            workloads=["429.mcf"],
            mitigations=["comet"],
            nrhs=[125],
            mitigation_overrides={"config": config},
        )
        mitigated = [s for s in specs if s.mitigation.name == "comet"]
        assert mitigated[0].mitigation.overrides_dict() == {"config": config}


# --------------------------------------------------------------------------- #
# Session execution
# --------------------------------------------------------------------------- #
class TestSession:
    def test_run_returns_record_with_provenance(self):
        spec = simple_spec()
        record = Session(use_cache=False, max_workers=0).run(spec)
        assert record.spec == spec
        assert record.result.per_core_ipc
        assert record.provenance["spec_hash"] == spec.content_hash()
        assert record.provenance["from_cache"] is False

    def test_disk_cache_round_trip(self, tmp_path):
        spec = simple_spec()
        first = Session(cache_dir=tmp_path, max_workers=0).run(spec)
        session = Session(cache_dir=tmp_path, max_workers=0)
        second = session.run(spec)
        assert session.cache_hits == 1
        assert second.provenance["from_cache"] is True
        assert second.result == first.result

    def test_compare_includes_baseline(self):
        records = Session(use_cache=False, max_workers=0).compare(
            WorkloadSpec(name="502.gcc", num_requests=300), ["comet"], nrh=500
        )
        assert set(records) == {"none", "comet"}
        assert records["none"].result.ipc > 0
        # The threshold-independent baseline is pinned at nrh=1, so compares
        # at different thresholds share one cache entry for it.
        assert records["none"].spec.mitigation.nrh == 1

    def test_compare_baseline_shared_across_thresholds(self, tmp_path):
        workload = WorkloadSpec(name="502.gcc", num_requests=300)
        session = Session(cache_dir=tmp_path, max_workers=0)
        session.compare(workload, ["comet"], nrh=500)
        session.compare(workload, ["comet"], nrh=250)
        # Second compare: the baseline comes back from the cache.
        assert session.cache_hits >= 1

    def test_run_record_json_round_trip(self):
        record = Session(use_cache=False, max_workers=0).run(simple_spec())
        restored = RunRecord.from_json(record.to_json())
        assert restored.spec == record.spec
        assert restored.result == record.result
        assert restored.provenance == record.provenance


# --------------------------------------------------------------------------- #
# Deprecated shims
# --------------------------------------------------------------------------- #
class TestDeprecatedShims:
    def test_run_single_core_warns_exactly_once(self):
        from repro.sim import runner
        from repro.sim.runner import default_experiment_config, run_single_core
        from repro.workloads.suite import build_trace

        runner._DEPRECATION_WARNED.discard("run_single_core")
        dram_config = default_experiment_config()
        trace = build_trace("502.gcc", num_requests=200, dram_config=dram_config)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_single_core(trace, "none", nrh=1000, dram_config=dram_config)
            run_single_core(trace, "none", nrh=1000, dram_config=dram_config)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "run_single_core is deprecated" in str(deprecations[0].message)


# Regenerated for the controller-policy layer: PlatformSpec grew the
# ``controller`` key (SWEEP_CACHE_VERSION 5).
PINNED_HASH = "daea0a0692f62f8b73ffc20872a3df9a72edb751d8a1da08f38aa2e2e592e0bd"
