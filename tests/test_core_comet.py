"""Unit tests for the CoMeT mechanism (driven through a fake controller)."""

import pytest

from repro.core.comet import CoMeT
from repro.core.config import CoMeTConfig
from tests.conftest import make_address


def make_comet(fake_controller, nrh=124, **config_overrides):
    config = CoMeTConfig(nrh=nrh, **config_overrides)
    comet = CoMeT(nrh=nrh, config=config)
    comet.attach(fake_controller)
    return comet


def hammer(comet, address, times, start_cycle=0, cycle_step=60):
    cycle = start_cycle
    for _ in range(times):
        comet.on_activation(cycle, address, is_preventive=False)
        cycle += cycle_step
    return cycle


class TestActivationTracking:
    def test_below_npr_no_refresh(self, fake_controller, tiny_dram_config):
        comet = make_comet(fake_controller)
        address = make_address(tiny_dram_config, row=10)
        hammer(comet, address, comet.config.npr - 2)
        assert fake_controller.preventive_refreshes == []

    def test_reaching_npr_triggers_victim_refreshes(self, fake_controller, tiny_dram_config):
        comet = make_comet(fake_controller)
        address = make_address(tiny_dram_config, row=10)
        hammer(comet, address, comet.config.npr)
        victims = {a.row for a, _ in fake_controller.preventive_refreshes}
        assert victims == {9, 11}
        assert comet.stats.preventive_refreshes == 2

    def test_rat_entry_allocated_at_npr(self, fake_controller, tiny_dram_config):
        comet = make_comet(fake_controller)
        address = make_address(tiny_dram_config, row=10)
        hammer(comet, address, comet.config.npr)
        tracker = comet.bank_tracker(address.bank_key)
        assert tracker.rat.contains(10)
        assert tracker.rat.lookup(10) == 0

    def test_rat_counter_used_after_first_refresh(self, fake_controller, tiny_dram_config):
        """After a refresh the RAT counter (not the saturated CT) drives decisions."""
        comet = make_comet(fake_controller)
        address = make_address(tiny_dram_config, row=10)
        npr = comet.config.npr
        hammer(comet, address, npr, cycle_step=1)
        assert len(fake_controller.preventive_refreshes) == 2
        # A few more activations must NOT immediately re-trigger refreshes,
        # because the RAT counter restarts from zero.  (All cycles stay well
        # inside one counter reset period.)
        hammer(comet, address, npr - 2, start_cycle=100, cycle_step=1)
        assert len(fake_controller.preventive_refreshes) == 2
        # Reaching NPR again on the RAT counter triggers the next refresh pair.
        hammer(comet, address, 2, start_cycle=200, cycle_step=1)
        assert len(fake_controller.preventive_refreshes) == 4

    def test_ct_counters_saturated_not_reset(self, fake_controller, tiny_dram_config):
        comet = make_comet(fake_controller)
        address = make_address(tiny_dram_config, row=10)
        hammer(comet, address, comet.config.npr)
        tracker = comet.bank_tracker(address.bank_key)
        assert tracker.counter_table.estimate(10) == comet.config.npr

    def test_preventive_activations_are_tracked(self, fake_controller, tiny_dram_config):
        """Preventive ACTs disturb their own neighbours, so CoMeT counts them
        too; enough of them trigger refreshes of *their* victims."""
        comet = make_comet(fake_controller)
        address = make_address(tiny_dram_config, row=10)
        for cycle in range(comet.config.npr):
            comet.on_activation(cycle, address, is_preventive=True)
        assert comet.stats.observed_activations == comet.config.npr
        victims = {a.row for a, _ in fake_controller.preventive_refreshes}
        assert victims == {9, 11}

    def test_per_bank_isolation(self, fake_controller, tiny_dram_config):
        comet = make_comet(fake_controller)
        bank0 = make_address(tiny_dram_config, row=10, bank=0)
        bank1 = make_address(tiny_dram_config, row=10, bank=1)
        hammer(comet, bank0, comet.config.npr - 1)
        hammer(comet, bank1, 1)
        assert comet.estimate(bank1.bank_key, 10) <= 1

    def test_estimate_interface(self, fake_controller, tiny_dram_config):
        comet = make_comet(fake_controller)
        address = make_address(tiny_dram_config, row=10)
        hammer(comet, address, 5)
        assert comet.estimate(address.bank_key, 10) >= 5


class TestPeriodicReset:
    def test_counters_cleared_after_reset_period(self, fake_controller, tiny_dram_config):
        comet = make_comet(fake_controller)
        address = make_address(tiny_dram_config, row=10)
        hammer(comet, address, 10, cycle_step=1)
        reset_period = comet.config.reset_period_cycles(tiny_dram_config.tREFW)
        # An activation far in the future (past the reset period) sees fresh counters.
        comet.on_activation(reset_period + 10, address, is_preventive=False)
        assert comet.estimate(address.bank_key, 10) <= 1
        assert comet.stats.counter_resets >= 1

    def test_rat_cleared_by_periodic_reset(self, fake_controller, tiny_dram_config):
        comet = make_comet(fake_controller)
        address = make_address(tiny_dram_config, row=10)
        hammer(comet, address, comet.config.npr, cycle_step=1)
        tracker = comet.bank_tracker(address.bank_key)
        assert tracker.rat.contains(10)
        reset_period = comet.config.reset_period_cycles(tiny_dram_config.tREFW)
        comet.on_activation(reset_period + 10, address, is_preventive=False)
        assert not tracker.rat.contains(10) or tracker.rat.lookup(10) <= 1


class TestEarlyPreventiveRefresh:
    def test_capacity_misses_trigger_rank_refresh(self, fake_controller, tiny_dram_config):
        """Hammering more rows than the RAT holds must eventually trigger the
        coarse-grained early preventive refresh (Section 4.2)."""
        comet = make_comet(
            fake_controller,
            rat_entries=4,
            rat_miss_history_length=16,
            early_refresh_threshold_fraction=0.25,
        )
        npr = comet.config.npr
        rows = [10 + 3 * i for i in range(12)]  # 12 rows > 4 RAT entries
        cycle = 0
        for _ in range(4):
            for row in rows:
                address = make_address(tiny_dram_config, row=row)
                for _ in range(npr):
                    comet.on_activation(cycle, address, is_preventive=False)
                    cycle += 1
            if fake_controller.rank_refreshes:
                break
        assert fake_controller.rank_refreshes, "expected an early preventive refresh"
        assert comet.stats.early_refresh_operations >= 1

    def test_early_refresh_resets_rank_counters(self, fake_controller, tiny_dram_config):
        comet = make_comet(fake_controller, rat_entries=2, rat_miss_history_length=8)
        address = make_address(tiny_dram_config, row=50)
        comet._early_preventive_refresh(0, address)
        assert fake_controller.rank_refreshes
        channel, rank, count = fake_controller.rank_refreshes[0]
        assert (channel, rank) == (0, 0)
        assert count == max(1, tiny_dram_config.tREFW // tiny_dram_config.tREFI)

    def test_compulsory_misses_do_not_trigger_early_refresh(self, fake_controller, tiny_dram_config):
        """New aggressors (compulsory misses) alone must not trigger the early refresh."""
        comet = make_comet(fake_controller, rat_entries=256, rat_miss_history_length=16)
        npr = comet.config.npr
        cycle = 0
        for row in range(10, 40):
            address = make_address(tiny_dram_config, row=row)
            for _ in range(npr):
                comet.on_activation(cycle, address, is_preventive=False)
                cycle += 1
        assert fake_controller.rank_refreshes == []


class TestStorageReport:
    def test_storage_report_totals(self, fake_controller):
        comet = make_comet(fake_controller, nrh=1000)
        report = comet.storage_report()
        assert report["total_KiB"] == pytest.approx(
            report["ct_KiB"] + report["rat_KiB"] + report["history_KiB"]
        )

    def test_storage_bits_per_bank(self, fake_controller):
        comet = make_comet(fake_controller, nrh=1000)
        assert comet.storage_bits_per_bank() == comet.config.storage_bits_per_bank
