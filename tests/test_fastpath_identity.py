"""Bit-identity of the fast hot path against the legacy recompute path.

:mod:`repro.fastpath` gates two independent accelerations — the
controller's struct-of-arrays FR-FCFS scan
(:meth:`~repro.controller.controller.MemoryController._build_fast_select`)
and the event kernel's untouched-channel decision skip
(:meth:`~repro.sim.engine.EventKernel._schedule_controller`).  Both claim
to be pure optimisations: same commands, same cycles, same statistics.
These tests pin that claim at the whole-run level by executing identical
experiments with the switch forced off and on and comparing every field of
the :class:`~repro.sim.system.SimulationResult`.  The e2e benchmark
(``benchmarks/test_micro_kernel_e2e.py``) re-checks the same invariant on
its larger timed scenarios; this file keeps a small always-on copy in
tier-1.
"""

import pytest

from repro import fastpath
from repro.controller.policies import ControllerPolicySpec
from repro.experiment.execute import execute_spec
from repro.experiment.spec import (
    ExperimentSpec,
    MitigationSpec,
    PlatformSpec,
    WorkloadSpec,
)

#: Small but structurally diverse runs: single channel with full violation
#: recording, a multi-core 2-channel fabric (per-channel skip state), an
#: adversarial pattern under the streaming verifier, and a BLISS/closed-page
#: policy point (non-FR-FCFS schedulers take the generic scan, but the
#: kernel skip must still respect BLISS' clearing boundary).
SPECS = {
    "single_core_comet": ExperimentSpec(
        workload=WorkloadSpec(name="429.mcf", num_requests=800),
        mitigation=MitigationSpec(name="comet", nrh=250),
    ),
    "multicore_2ch": ExperimentSpec(
        workload=WorkloadSpec(name="429.mcf", num_requests=500, num_cores=4),
        mitigation=MitigationSpec(name="comet", nrh=250),
        platform=PlatformSpec(channels=2),
    ),
    "attack_streaming": ExperimentSpec(
        workload=WorkloadSpec(name="attack_traditional", num_requests=800),
        mitigation=MitigationSpec(name="para", nrh=125),
        verify_security="streaming",
    ),
    "bliss_closed_page": ExperimentSpec(
        workload=WorkloadSpec(name="429.mcf", num_requests=800),
        mitigation=MitigationSpec(name="comet", nrh=250),
        platform=PlatformSpec(
            controller=ControllerPolicySpec(
                scheduler="bliss", row_policy="closed_page"
            )
        ),
    ),
}


@pytest.mark.parametrize("label", sorted(SPECS))
def test_fast_path_is_bit_identical(label):
    spec = SPECS[label]
    with fastpath.forced(False):
        legacy = execute_spec(spec)
    with fastpath.forced(True):
        fast = execute_spec(spec)
    assert fast.__dict__ == legacy.__dict__


def test_forced_restores_the_switch():
    before = fastpath.enabled()
    with fastpath.forced(not before):
        assert fastpath.enabled() is (not before)
    assert fastpath.enabled() is before


def test_fast_scan_is_scheduler_gated():
    # Only FR-FCFS declares SoA-scan support; every other scheduler must
    # keep the generic candidate path (the SoA scan hard-codes FR-FCFS
    # semantics and would silently misrank other policies' candidates).
    from repro.controller.policies import (
        SchedulingPolicy,
        policy_entry,
        scheduler_names,
    )

    assert SchedulingPolicy.SUPPORTS_FAST_SCAN is False
    for name in scheduler_names():
        cls = policy_entry("scheduler", name).cls
        expected = name == "fr_fcfs"
        assert cls.SUPPORTS_FAST_SCAN is expected, name
