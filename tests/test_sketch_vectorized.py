"""Backend equivalence for the vectorized sketch kernels.

The sketches (:mod:`repro.sketch`) latch one of two backends at
construction: a contiguous numpy array (numpy importable *and*
:mod:`repro.fastpath` on) or the original pure-Python containers.  The
whole point of the latch is that it is *unobservable* — same counts, same
estimates, same snapshots, bit for bit — so golden results cannot depend
on whether numpy happens to be installed.  These tests pin that:

* :meth:`~repro.sketch.hashes.HashFamily.hash_matrix` equals the scalar
  :meth:`~repro.sketch.hashes.HashFamily.hash` for every family, including
  the out-of-u64-range fallback;
* any operation sequence applied to a numpy-backed and a pure-Python
  sketch leaves them with identical observable state;
* snapshots are backend-portable: captured under one backend, restored
  under the other, identical behavior afterwards.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import fastpath
from repro._np import np
from repro.sketch.count_min import (
    ConservativeCountMinSketch,
    CountMinSketch,
    SketchConfig,
)
from repro.sketch.counting_bloom import CountingBloomFilter
from repro.sketch.hashes import make_hash_family

FAMILY_KINDS = ["shift_mask", "multiply_shift", "tabulation"]

needs_numpy = pytest.mark.skipif(np is None, reason="numpy unavailable")

_keys_strategy = st.lists(
    st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=1, max_size=40
)


# --------------------------------------------------------------------------- #
# hash_matrix == hash
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", FAMILY_KINDS)
class TestHashMatrixEqualsScalar:
    @settings(max_examples=40, deadline=None)
    @given(keys=_keys_strategy, seed=st.integers(min_value=0, max_value=5))
    def test_matrix_matches_scalar(self, kind, keys, seed):
        family = make_hash_family(kind, num_hashes=4, num_buckets=128, seed=seed)
        expected = [[family.hash(i, key) for key in keys] for i in range(4)]
        matrix = family.hash_matrix(keys)
        rows = matrix.tolist() if np is not None else matrix
        assert rows == expected

    def test_out_of_range_keys_fall_back(self, kind):
        """Keys beyond u64 can't ride the numpy path; values must not change."""
        family = make_hash_family(kind, num_hashes=3, num_buckets=64, seed=1)
        keys = [1 << 70, (1 << 64) + 5, 3]
        matrix = family.hash_matrix(keys)
        rows = matrix if isinstance(matrix, list) else matrix.tolist()
        assert rows == [[family.hash(i, key) for key in keys] for i in range(3)]


# --------------------------------------------------------------------------- #
# Sketch backend parity
# --------------------------------------------------------------------------- #
# Operation alphabet: updates, batches, group writes and resets, with keys
# from a small pool so counters actually collide and saturate.
_small_key = st.integers(min_value=0, max_value=31)
_ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("update"), _small_key, st.integers(1, 5)),
        st.tuples(
            st.just("batch"),
            st.lists(_small_key, min_size=1, max_size=10),
            st.integers(1, 3),
        ),
        st.tuples(st.just("set_group"), _small_key, st.integers(0, 20)),
        st.tuples(st.just("reset"), st.just(0), st.just(0)),
    ),
    min_size=1,
    max_size=30,
)


def _build_pair(factory):
    """The same sketch, once numpy-backed, once pure-Python."""
    with fastpath.forced(True):
        vec = factory()
    with fastpath.forced(False):
        pure = factory()
    return vec, pure


def _apply(sketch, op):
    name, a, b = op
    if name == "update":
        return sketch.update(a, b)
    if name == "batch":
        return sketch.update_batch(a, b)
    if name == "set_group":
        if hasattr(sketch, "set_group"):
            return sketch.set_group(a, b)
        return None
    return sketch.reset()


def _cms_factory(conservative):
    config = SketchConfig(num_hashes=4, counters_per_hash=32, counter_width_bits=6)
    cls = ConservativeCountMinSketch if conservative else CountMinSketch
    return lambda: cls(config)


@needs_numpy
class TestCountMinBackendParity:
    @settings(max_examples=40, deadline=None)
    @given(ops=_ops_strategy, conservative=st.booleans())
    def test_same_observable_state(self, ops, conservative):
        vec, pure = _build_pair(_cms_factory(conservative))
        assert vec._vec and not pure._vec
        for op in ops:
            assert _apply(vec, op) == _apply(pure, op)
        assert vec.counters_snapshot() == pure.counters_snapshot()
        assert vec.snapshot() == pure.snapshot()
        assert vec.max_counter() == pure.max_counter()
        assert vec.num_saturated_counters() == pure.num_saturated_counters()
        probes = list(range(32))
        assert vec.estimate_many(probes) == pure.estimate_many(probes)
        assert [vec.is_saturated(k) for k in probes] == [
            pure.is_saturated(k) for k in probes
        ]

    @settings(max_examples=25, deadline=None)
    @given(ops=_ops_strategy)
    def test_snapshot_is_backend_portable(self, ops):
        vec, pure = _build_pair(_cms_factory(False))
        for op in ops:
            _apply(vec, op)
        pure.restore(vec.snapshot())
        vec.update(3, 2)
        pure.update(3, 2)
        assert vec.counters_snapshot() == pure.counters_snapshot()
        assert vec.estimate(3) == pure.estimate(3)


@needs_numpy
class TestCountingBloomBackendParity:
    @settings(max_examples=40, deadline=None)
    @given(ops=_ops_strategy)
    def test_same_observable_state(self, ops):
        vec, pure = _build_pair(
            lambda: CountingBloomFilter(
                num_counters=64, num_hashes=3, counter_width_bits=5, seed=2
            )
        )
        assert vec._vec and not pure._vec
        for op in ops:
            assert _apply(vec, op) == _apply(pure, op)
        assert vec.counters_snapshot() == pure.counters_snapshot()
        assert vec.snapshot() == pure.snapshot()
        probes = list(range(32))
        assert [vec.estimate(k) for k in probes] == [pure.estimate(k) for k in probes]
        assert [vec.contains(k, 2) for k in probes] == [
            pure.contains(k, 2) for k in probes
        ]

    @settings(max_examples=25, deadline=None)
    @given(ops=_ops_strategy)
    def test_snapshot_is_backend_portable(self, ops):
        vec, pure = _build_pair(
            lambda: CountingBloomFilter(
                num_counters=64, num_hashes=3, counter_width_bits=5, seed=2
            )
        )
        for op in ops:
            _apply(pure, op)
        vec.restore(pure.snapshot())
        vec.update(7)
        pure.update(7)
        assert vec.counters_snapshot() == pure.counters_snapshot()
