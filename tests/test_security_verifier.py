"""Property-based and channel-scoping tests for the SecurityVerifier.

The verifier is the ground truth the whole security story rests on, so it is
pinned from three directions:

* **Soundness** (hypothesis): for arbitrary interleavings of ACT, per-row
  refresh and rank-REF events, the verifier reports a violation *iff* an
  independently tracked victim-disturbance oracle crosses NRH — never below
  it, always when a stream provably crosses it.
* **Blast-radius dominance** (hypothesis): a ``blast_radius=2`` verifier
  observes at least the disturbance (and every violation, no later) of a
  ``blast_radius=1`` verifier on the same stream.
* **Streaming mode**: ``record_violations=False`` must agree with the
  recording mode on the verdict, count, first-violation cycle and maximum.
* **Channel scoping** (the PR-2 fabric semantics): a periodic REF clears
  rows in every bank of the refreshed rank *of that channel only* — both at
  the observer level and end-to-end on a two-channel fabric.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.security import SecurityVerifier
from repro.dram.address import DRAMAddress
from repro.dram.config import small_test_config
from repro.dram.dram_system import DRAMSystem

ROWS = 32
NRH = 6


def make_verifier(nrh=NRH, blast_radius=1, record_violations=True, channels=1):
    config = small_test_config(
        rows_per_bank=ROWS,
        banks_per_bankgroup=2,
        bankgroups_per_rank=2,
        ranks_per_channel=1,
        refresh_window_scale=1.0 / 2048.0,
        channels=channels,
    )
    dram = DRAMSystem(config)
    return SecurityVerifier(
        dram, nrh=nrh, blast_radius=blast_radius, record_violations=record_violations
    )


def address(row, bank=0, bankgroup=0, channel=0, rank=0):
    return DRAMAddress(
        channel=channel, rank=rank, bankgroup=bankgroup, bank=bank, row=row, column=0
    )


# Event streams: ACT to a row, a preventive/in-DRAM refresh of a row, or a
# rank-level REF covering a row range.
acts = st.tuples(st.just("act"), st.integers(0, ROWS - 1), st.integers(0, 1))
row_refreshes = st.tuples(st.just("rowref"), st.integers(0, ROWS - 1), st.integers(0, 1))
rank_refreshes = st.tuples(st.just("ref"), st.integers(0, ROWS - 1), st.just(8))
events = st.lists(st.one_of(acts, row_refreshes, rank_refreshes), min_size=1, max_size=250)


def apply_stream(verifier, stream, channel=0):
    """Drive the observer hooks directly and maintain the oracle in parallel.

    The oracle is an independent dict of victim -> activation count since
    that victim's last refresh; it returns the expected violation events.
    """
    oracle = defaultdict(int)
    expected_violations = []
    blast = verifier.blast_radius
    for cycle, (kind, row, bank) in enumerate(stream):
        if kind == "act":
            verifier._on_activation(cycle, address(row, bank=bank, channel=channel), False)
            for distance in range(1, blast + 1):
                for victim in (row - distance, row + distance):
                    if 0 <= victim < ROWS:
                        oracle[(bank, victim)] += 1
                        if oracle[(bank, victim)] >= verifier.nrh:
                            expected_violations.append((cycle, bank, victim))
        elif kind == "rowref":
            verifier._on_row_refresh(cycle, address(row, bank=bank, channel=channel))
            oracle.pop((bank, row), None)
        else:  # rank-level REF covering [row, row + count)
            count = bank  # reused slot: here it is the covered row count (8)
            verifier._on_rank_refresh(cycle, (channel, 0), row, count)
            for key in [k for k in oracle if row <= k[1] < row + count]:
                del oracle[key]
    return oracle, expected_violations


class TestVerifierSoundness:
    @settings(max_examples=80, deadline=None)
    @given(stream=events)
    def test_matches_oracle_exactly(self, stream):
        """Violations (count, cycles) match the independent oracle: no report
        below NRH, a report whenever the oracle crosses NRH."""
        verifier = make_verifier()
        oracle, expected = apply_stream(verifier, stream)
        assert verifier.violation_count == len(expected)
        assert [v.cycle for v in verifier.violations] == [c for c, _, _ in expected]
        if expected:
            assert not verifier.is_secure
            assert verifier.first_violation_cycle == expected[0][0]
        else:
            assert verifier.is_secure
            assert verifier.first_violation_cycle is None
            assert verifier.max_disturbance < verifier.nrh

    @settings(max_examples=60, deadline=None)
    @given(stream=events, row=st.integers(1, ROWS - 2))
    def test_provable_crossing_is_always_reported(self, stream, row):
        """Any prefix followed by NRH straight ACTs on one row must violate:
        disturbance only grows without refreshes, so the neighbours provably
        cross the threshold."""
        verifier = make_verifier()
        apply_stream(verifier, stream)
        base = len(stream)
        for extra in range(verifier.nrh):
            verifier._on_activation(base + extra, address(row), False)
        assert not verifier.is_secure
        assert verifier.violation_count >= 1
        assert verifier.max_disturbance >= verifier.nrh

    @settings(max_examples=60, deadline=None)
    @given(stream=events)
    def test_blast_radius_2_dominates_1(self, stream):
        """The wider blast radius sees a superset of the damage: its maximum
        dominates, it has at least as many violations, and it never reports
        the first violation later."""
        narrow = make_verifier(blast_radius=1)
        wide = make_verifier(blast_radius=2)
        apply_stream(narrow, stream)
        apply_stream(wide, stream)
        assert wide.max_disturbance >= narrow.max_disturbance
        assert wide.violation_count >= narrow.violation_count
        if narrow.first_violation_cycle is not None:
            assert wide.first_violation_cycle is not None
            assert wide.first_violation_cycle <= narrow.first_violation_cycle

    @settings(max_examples=60, deadline=None)
    @given(stream=events)
    def test_streaming_mode_agrees_with_recording_mode(self, stream):
        """The cheap max-margin mode keeps the verdict, count, first cycle
        and maximum of the full mode — it only skips the violation objects."""
        recording = make_verifier(record_violations=True)
        streaming = make_verifier(record_violations=False)
        apply_stream(recording, stream)
        apply_stream(streaming, stream)
        assert streaming.violations == []
        assert streaming.violation_count == recording.violation_count
        assert streaming.first_violation_cycle == recording.first_violation_cycle
        assert streaming.max_disturbance == recording.max_disturbance
        assert streaming.is_secure == recording.is_secure
        assert streaming.report()["violations"] == len(recording.violations)


class TestChannelScoping:
    """Per-channel REF semantics (the PR-2 fabric contract).

    The module docstring promises a periodic REF clears the rows it covers
    in every bank of the refreshed rank *scoped to that rank's channel*;
    these tests pin the implementation to that reading.
    """

    def test_rank_refresh_clears_only_its_channel(self):
        verifier = make_verifier(channels=2)
        # Same rank/bank/row coordinates on both channels.
        for cycle in range(3):
            verifier._on_activation(cycle, address(10, channel=0), False)
            verifier._on_activation(cycle, address(10, channel=1), False)
        assert verifier.disturbance_of(address(11, channel=0)) == 3
        assert verifier.disturbance_of(address(11, channel=1)) == 3
        # REF on channel 0's rank covering the victim rows.
        verifier._on_rank_refresh(100, (0, 0), 0, ROWS)
        assert verifier.disturbance_of(address(11, channel=0)) == 0
        assert verifier.disturbance_of(address(11, channel=1)) == 3

    def test_rank_refresh_clears_every_bank_of_the_rank(self):
        verifier = make_verifier()
        for bank in (0, 1):
            for bankgroup in (0, 1):
                verifier._on_activation(
                    0, address(10, bank=bank, bankgroup=bankgroup), False
                )
        verifier._on_rank_refresh(1, (0, 0), 0, ROWS)
        for bank in (0, 1):
            for bankgroup in (0, 1):
                assert (
                    verifier.disturbance_of(address(11, bank=bank, bankgroup=bankgroup))
                    == 0
                )

    def test_two_channel_fabric_isolates_attack_disturbance(self):
        """End to end: an attack confined to channel 1 of a 2-channel fabric
        registers on channel 1's verifier and leaves channel 0 clean."""
        from repro.sim.system import System, SystemConfig
        from repro.workloads.attacks import traditional_rowhammer_attack

        config = small_test_config(
            rows_per_bank=128,
            banks_per_bankgroup=2,
            bankgroups_per_rank=2,
            ranks_per_channel=1,
            refresh_window_scale=1.0 / 512.0,
            channels=2,
        )
        attack = traditional_rowhammer_attack(
            num_requests=1200, dram_config=config, aggressor_rows_per_bank=2, channel=1
        )
        system = System(
            [attack],
            mitigation=None,
            config=SystemConfig(
                dram=config, verify_security=True, nrh_for_verification=10_000
            ),
        )
        system.run()
        assert len(system.verifiers) == 2
        assert system.verifiers[1].max_disturbance > 0
        assert system.verifiers[0].max_disturbance == 0


class TestVerifierAPI:
    def test_streaming_report_fields(self):
        verifier = make_verifier(record_violations=False)
        for cycle in range(NRH + 2):
            verifier._on_activation(cycle, address(5), False)
        report = verifier.report()
        assert report["is_secure"] is False
        # Both neighbours (rows 4 and 6) violate on cycles NRH-1, NRH, NRH+1.
        assert report["violations"] == 6
        assert report["first_violation_cycle"] == NRH - 1
        assert report["margin"] == pytest.approx(report["max_disturbance"] / NRH)

    def test_nrh_must_be_positive(self):
        with pytest.raises(ValueError):
            make_verifier(nrh=0)
