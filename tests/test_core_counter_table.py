"""Tests for CoMeT's Counter Table (CMS-CU saturating at NPR)."""

import pytest

from repro.core.config import CoMeTConfig
from repro.core.counter_table import CounterTable


@pytest.fixture
def table():
    # NRH=124, k=3 -> NPR=31; small table to provoke collisions in tests.
    config = CoMeTConfig(nrh=124, num_hashes=2, counters_per_hash=32)
    return CounterTable(config)


class TestCounterTable:
    def test_npr_saturation(self, table):
        for _ in range(100):
            table.increment(5)
        assert table.estimate(5) == table.npr
        assert table.is_saturated(5)

    def test_increment_and_estimate(self, table):
        for i in range(1, 11):
            assert table.increment(9) == i
        assert table.estimate(9) == 10

    def test_never_underestimates(self):
        config = CoMeTConfig(nrh=1000, num_hashes=2, counters_per_hash=16)
        table = CounterTable(config)
        truth = {}
        for key in range(100):
            count = key % 5 + 1
            truth[key] = count
            for _ in range(count):
                table.increment(key)
        for key, count in truth.items():
            assert table.estimate(key) >= count

    def test_saturate_sets_group_to_npr(self, table):
        table.increment(7)
        table.saturate(7)
        assert table.estimate(7) == table.npr

    def test_saturated_counters_shared_by_colliding_rows(self):
        """A row sharing all counters with a saturated row is also estimated at NPR."""
        config = CoMeTConfig(nrh=124, num_hashes=1, counters_per_hash=4)
        table = CounterTable(config)
        # With one hash and 4 counters, collisions are guaranteed among 5 rows.
        rows = list(range(5))
        groups = {row: tuple(table.counter_group(row)) for row in rows}
        colliding = [
            (a, b) for a in rows for b in rows if a < b and groups[a] == groups[b]
        ]
        assert colliding, "expected at least one pair of colliding rows"
        a, b = colliding[0]
        table.saturate(a)
        assert table.estimate(b) == table.npr

    def test_reset_clears_counters(self, table):
        table.increment(3)
        table.saturate(3)
        table.reset()
        assert table.estimate(3) == 0
        assert table.num_saturated_counters() == 0

    def test_counter_group_size(self, table):
        assert len(table.counter_group(11)) == 2

    def test_storage_bits(self):
        config = CoMeTConfig(nrh=1000)
        table = CounterTable(config)
        assert table.storage_bits == 2048 * 8

    def test_different_bank_seeds_give_different_hashes(self):
        config = CoMeTConfig(nrh=1000)
        a = CounterTable(config, bank_seed=1)
        b = CounterTable(config, bank_seed=2)
        rows = range(200)
        different = sum(1 for row in rows if a.counter_group(row) != b.counter_group(row))
        assert different > 100

    def test_snapshot_shape(self, table):
        snapshot = table.counters_snapshot()
        assert len(snapshot) == 2
        assert len(snapshot[0]) == 32
