"""Tests for the Count-Min Sketch and its conservative-update variant."""

import pytest

from repro.sketch.count_min import ConservativeCountMinSketch, CountMinSketch, SketchConfig


def make_sketch(cls=CountMinSketch, **overrides):
    config = SketchConfig(
        num_hashes=overrides.pop("num_hashes", 4),
        counters_per_hash=overrides.pop("counters_per_hash", 64),
        counter_width_bits=overrides.pop("counter_width_bits", 10),
        seed=overrides.pop("seed", 1),
    )
    return cls(config, **overrides)


class TestSketchConfig:
    def test_total_counters_and_storage(self):
        config = SketchConfig(num_hashes=4, counters_per_hash=512, counter_width_bits=8)
        assert config.total_counters == 2048
        assert config.storage_bits == 2048 * 8

    def test_paper_counter_table_storage(self):
        """The paper's CT (4x512, 8-bit at NRH=1K) is 2 KiB per bank = 64 KiB for 32 banks."""
        config = SketchConfig(num_hashes=4, counters_per_hash=512, counter_width_bits=8)
        assert config.storage_bits / 8 / 1024 * 32 == 64.0


class TestCountMinSketch:
    def test_single_item_exact(self):
        sketch = make_sketch()
        for _ in range(17):
            sketch.update(1234)
        assert sketch.estimate(1234) == 17

    def test_unknown_item_estimate_zero_when_empty(self):
        sketch = make_sketch()
        assert sketch.estimate(99) == 0

    def test_never_underestimates(self):
        sketch = make_sketch(counters_per_hash=32)
        truth = {}
        for key in range(200):
            count = (key * 7) % 5 + 1
            truth[key] = count
            for _ in range(count):
                sketch.update(key)
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_update_returns_new_estimate(self):
        sketch = make_sketch()
        value = sketch.update(42, 3)
        assert value == sketch.estimate(42) == 3

    def test_negative_update_rejected(self):
        sketch = make_sketch()
        with pytest.raises(ValueError):
            sketch.update(1, -1)

    def test_saturation(self):
        sketch = make_sketch(saturation_value=10)
        for _ in range(50):
            sketch.update(7)
        assert sketch.estimate(7) == 10
        assert sketch.is_saturated(7)

    def test_saturation_must_fit_counter_width(self):
        config = SketchConfig(num_hashes=2, counters_per_hash=16, counter_width_bits=4)
        with pytest.raises(ValueError):
            CountMinSketch(config, saturation_value=100)

    def test_set_group_raises_counters_to_value(self):
        sketch = make_sketch(saturation_value=31)
        sketch.update(5)
        sketch.set_group(5, 31)
        assert sketch.estimate(5) == 31

    def test_set_group_never_lowers_counters(self):
        sketch = make_sketch(saturation_value=100)
        for _ in range(60):
            sketch.update(5)
        sketch.set_group(5, 10)
        assert sketch.estimate(5) == 60

    def test_reset_clears_all(self):
        sketch = make_sketch()
        for key in range(50):
            sketch.update(key)
        sketch.reset()
        assert sketch.max_counter() == 0
        assert sketch.total_updates == 0
        assert all(sketch.estimate(key) == 0 for key in range(50))

    def test_counter_group_indices_in_range(self):
        sketch = make_sketch(counters_per_hash=32)
        group = sketch.counter_group(12345)
        assert len(group) == 4
        assert all(0 <= idx < 32 for idx in group)

    def test_num_saturated_counters(self):
        sketch = make_sketch(saturation_value=5)
        assert sketch.num_saturated_counters() == 0
        for _ in range(5):
            sketch.update(3)
        assert sketch.num_saturated_counters() >= 1

    def test_estimate_many(self):
        sketch = make_sketch()
        sketch.update(1, 4)
        sketch.update(2, 2)
        assert sketch.estimate_many([1, 2]) == [4, 2]

    def test_mismatched_hash_family_rejected(self):
        from repro.sketch.hashes import ShiftMaskHashFamily

        config = SketchConfig(num_hashes=4, counters_per_hash=64)
        with pytest.raises(ValueError):
            CountMinSketch(config, hash_family=ShiftMaskHashFamily(3, 64))
        with pytest.raises(ValueError):
            CountMinSketch(config, hash_family=ShiftMaskHashFamily(4, 32))


class TestConservativeCountMinSketch:
    def test_single_item_exact(self):
        sketch = make_sketch(ConservativeCountMinSketch)
        for _ in range(9):
            sketch.update(77)
        assert sketch.estimate(77) == 9

    def test_never_underestimates(self):
        sketch = make_sketch(ConservativeCountMinSketch, counters_per_hash=32)
        truth = {}
        for key in range(300):
            count = (key % 7) + 1
            truth[key] = count
            for _ in range(count):
                sketch.update(key)
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_conservative_update_overestimates_no_more_than_plain_cms(self):
        """CMS-CU estimates are <= plain CMS estimates for an identical stream."""
        plain = make_sketch(CountMinSketch, counters_per_hash=16, seed=3)
        conservative = make_sketch(ConservativeCountMinSketch, counters_per_hash=16, seed=3)
        stream = [(key * 13) % 97 for key in range(2000)]
        for key in stream:
            plain.update(key)
            conservative.update(key)
        for key in set(stream):
            assert conservative.estimate(key) <= plain.estimate(key)

    def test_total_overestimation_is_smaller(self):
        plain = make_sketch(CountMinSketch, counters_per_hash=16, seed=5)
        conservative = make_sketch(ConservativeCountMinSketch, counters_per_hash=16, seed=5)
        truth = {}
        stream = [(key * 31) % 211 for key in range(3000)]
        for key in stream:
            truth[key] = truth.get(key, 0) + 1
            plain.update(key)
            conservative.update(key)
        plain_error = sum(plain.estimate(k) - c for k, c in truth.items())
        conservative_error = sum(conservative.estimate(k) - c for k, c in truth.items())
        assert conservative_error <= plain_error

    def test_saturation(self):
        sketch = make_sketch(ConservativeCountMinSketch, saturation_value=8)
        for _ in range(20):
            sketch.update(11)
        assert sketch.estimate(11) == 8

    def test_negative_update_rejected(self):
        sketch = make_sketch(ConservativeCountMinSketch)
        with pytest.raises(ValueError):
            sketch.update(1, -2)

    def test_bulk_update_amount(self):
        sketch = make_sketch(ConservativeCountMinSketch)
        sketch.update(9, 6)
        assert sketch.estimate(9) == 6
