"""Tests for DRAM organization/timing configuration."""

import pytest

from repro.dram.config import DRAMConfig, DRAMOrganization, DRAMTiming, small_test_config


class TestOrganization:
    def test_paper_defaults(self):
        """Table 2: 1 channel, 2 ranks, 4 bank groups x 4 banks, 128K rows/bank."""
        org = DRAMOrganization()
        assert org.channels == 1
        assert org.ranks_per_channel == 2
        assert org.banks_per_rank == 16
        assert org.total_banks == 32
        assert org.rows_per_bank == 128 * 1024

    def test_row_and_cacheline_sizes(self):
        org = DRAMOrganization()
        assert org.row_size_bytes == 8192
        assert org.cacheline_bytes == 64

    def test_capacity(self):
        org = DRAMOrganization()
        assert org.capacity_bytes == org.total_rows * org.row_size_bytes
        # 32 banks * 128K rows * 8 KiB = 32 GiB for the channel as modelled.
        assert org.capacity_bytes == 32 * 1024**3


class TestTiming:
    def test_trefw_in_cycles(self):
        timing = DRAMTiming()
        # 64 ms at 0.833 ns/cycle is about 76.8M cycles.
        assert 7.6e7 < timing.tREFW < 7.7e7

    def test_refreshes_per_window(self):
        timing = DRAMTiming()
        assert 8000 < timing.refreshes_per_window < 8300

    def test_ns_cycle_roundtrip(self):
        timing = DRAMTiming()
        assert timing.cycles(timing.ns(100)) == 100

    def test_key_relationships(self):
        timing = DRAMTiming()
        assert timing.tRC >= timing.tRAS + timing.tRP
        assert timing.tRRD_L >= timing.tRRD_S
        assert timing.tCCD_L >= timing.tCCD_S


class TestDRAMConfig:
    def test_default_not_scaled(self):
        config = DRAMConfig()
        assert config.tREFW == config.timing.tREFW

    def test_scaling_shrinks_window_not_interval(self):
        config = DRAMConfig(refresh_window_scale=1.0 / 512.0)
        assert config.tREFW == int(config.timing.tREFW / 512)
        # tREFI is deliberately not scaled (keeps the refresh duty cycle).
        assert config.tREFI == config.timing.tREFI

    def test_rows_per_refresh_covers_all_rows(self):
        config = small_test_config(rows_per_bank=1024, refresh_window_scale=1 / 1024)
        assert config.rows_per_refresh * config.refreshes_per_window >= 1024

    def test_max_activations_per_window(self):
        config = DRAMConfig()
        assert config.max_activations_per_window == config.tREFW // config.timing.tRC

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            DRAMConfig(refresh_window_scale=0)

    def test_scaled_copy(self):
        config = DRAMConfig()
        scaled = config.scaled(0.25)
        assert scaled.refresh_window_scale == 0.25
        assert scaled.organization == config.organization

    def test_small_test_config_shape(self):
        config = small_test_config(rows_per_bank=256, ranks_per_channel=1)
        assert config.organization.rows_per_bank == 256
        assert config.organization.ranks_per_channel == 1
        assert config.tREFW < DRAMConfig().tREFW
