"""Tests for the adversarial attack-synthesis engine (repro.security.synth).

Three layers of pinning:

* **Golden bytes**: fixed seeds must reproduce the checked-in traces under
  ``tests/golden/synth/`` byte-for-byte (``Trace.save`` format), so a
  synthesizer refactor cannot silently change the access patterns behind
  published security verdicts.
* **Generator properties**: seeded reproducibility, seed sensitivity,
  channel confinement, and the sketch-aliasing whitebox guarantees (decoys
  collide with each other in CoMeT's Counter Table but never with the
  aggressor pair).
* **Registry composition**: every pattern resolves through the workload
  registry and composes with :class:`~repro.experiment.spec.WorkloadSpec`.
"""

from pathlib import Path

import pytest

from repro.dram.address import AddressMapper
from repro.experiment.registry import registered_workload_names, workload_entry
from repro.experiment.spec import WorkloadSpec
from repro.security.synth import (
    comet_counter_groups,
    find_aliasing_decoys,
    synth_pattern_names,
    synth_refresh_wave,
    synth_sketch_aliasing,
    synth_uniform,
)
from repro.sim.runner import default_experiment_config

GOLDEN_DIR = Path(__file__).parent / "golden" / "synth"
GOLDEN_REQUESTS = 240
GOLDEN_SEED = 1


@pytest.fixture(scope="module")
def dram_config():
    return default_experiment_config()


class TestRegistry:
    def test_all_patterns_registered_under_synth_category(self):
        names = synth_pattern_names()
        assert names == registered_workload_names("synth")
        assert set(names) == {
            "synth_blacksmith",
            "synth_multichannel",
            "synth_refresh_wave",
            "synth_rowpress",
            "synth_sketch_aliasing",
            "synth_uniform",
        }

    @pytest.mark.parametrize("name", synth_pattern_names())
    def test_builds_through_workload_spec(self, name, dram_config):
        traces = WorkloadSpec(name=name, num_requests=64, seed=3).build_traces(
            dram_config
        )
        assert len(traces) == 1
        assert len(traces[0]) == 64
        assert traces[0].name == name

    @pytest.mark.parametrize("name", synth_pattern_names())
    def test_entry_category(self, name):
        assert workload_entry(name).category == "synth"


class TestDeterminism:
    @pytest.mark.parametrize("name", synth_pattern_names())
    def test_same_seed_same_bytes(self, name, dram_config, tmp_path):
        build = workload_entry(name).build
        first = build(num_requests=120, dram_config=dram_config, seed=7)
        second = build(num_requests=120, dram_config=dram_config, seed=7)
        a, b = tmp_path / "a.trace", tmp_path / "b.trace"
        first.save(a)
        second.save(b)
        assert a.read_bytes() == b.read_bytes()

    @pytest.mark.parametrize("name", ["synth_uniform", "synth_blacksmith"])
    def test_different_seeds_differ(self, name, dram_config):
        build = workload_entry(name).build
        first = build(num_requests=120, dram_config=dram_config, seed=0)
        second = build(num_requests=120, dram_config=dram_config, seed=1)
        assert [e.address for e in first] != [e.address for e in second]

    @pytest.mark.parametrize("name", synth_pattern_names())
    def test_golden_bytes(self, name, dram_config, tmp_path):
        """Fixed seed -> byte-identical to the checked-in golden trace.

        Regenerate intentionally with
        ``PYTHONPATH=src python tools/gen_synth_golden.py``.
        """
        golden = GOLDEN_DIR / f"{name}.trace"
        assert golden.exists(), f"missing golden trace {golden}"
        trace = WorkloadSpec(
            name=name, num_requests=GOLDEN_REQUESTS, seed=GOLDEN_SEED
        ).build_traces(dram_config)[0]
        fresh = tmp_path / "fresh.trace"
        trace.save(fresh)
        assert fresh.read_bytes() == golden.read_bytes(), (
            f"{name} diverged from its golden trace; if the change is "
            "intentional, regenerate with tools/gen_synth_golden.py"
        )


class TestChannelConfinement:
    @pytest.mark.parametrize(
        "name",
        ["synth_uniform", "synth_blacksmith", "synth_sketch_aliasing", "synth_rowpress"],
    )
    def test_single_bank_patterns_stay_on_their_channel(self, name):
        config = default_experiment_config(channels=2)
        mapper = AddressMapper(config)
        build = workload_entry(name).build
        trace = build(num_requests=100, dram_config=config, seed=0, channel=1)
        channels = {mapper.decode(entry.address).channel for entry in trace}
        assert channels == {1}

    def test_multichannel_pattern_covers_every_channel(self):
        config = default_experiment_config(channels=2)
        mapper = AddressMapper(config)
        build = workload_entry("synth_multichannel").build
        trace = build(num_requests=100, dram_config=config, seed=0)
        channels = {mapper.decode(entry.address).channel for entry in trace}
        assert channels == {0, 1}

    def test_multichannel_pattern_is_double_sided_on_each_channel(self):
        """Every channel must alternate both rows of its pair (a regression
        guard: with the side phase-locked to the channel, each channel
        hammers one open row and issues essentially no ACTs)."""
        config = default_experiment_config(channels=2)
        mapper = AddressMapper(config)
        build = workload_entry("synth_multichannel").build
        trace = build(num_requests=100, dram_config=config, seed=0)
        rows_by_channel = {}
        per_channel_rows = {}
        for entry in trace:
            decoded = mapper.decode(entry.address)
            per_channel_rows.setdefault(decoded.channel, []).append(decoded.row)
            rows_by_channel.setdefault(decoded.channel, set()).add(decoded.row)
        for channel, rows in rows_by_channel.items():
            assert len(rows) == 2, f"channel {channel} is not double-sided: {rows}"
            low, high = sorted(rows)
            assert high - low == 2  # one victim row between the pair
        # Consecutive accesses on one channel alternate the pair's sides, so
        # every access is a row conflict (an ACT) on that channel's bank.
        for channel, sequence in per_channel_rows.items():
            assert all(a != b for a, b in zip(sequence, sequence[1:]))


class TestSketchAliasing:
    """The whitebox guarantees the sketch-aliasing attack is built on."""

    def test_decoys_collide_with_each_other_not_with_aggressors(self, dram_config):
        rows_per_bank = dram_config.organization.rows_per_bank
        bank_key = (0, 0, 0, 0)
        aggressors = [511, 513]
        decoys = find_aliasing_decoys(
            aggressors, rows_per_bank, bank_key, count=16
        )
        assert len(decoys) == 16
        assert not set(decoys) & {510, 511, 512, 513, 514}
        groups = {
            row: set(group)
            for row, group in zip(decoys, comet_counter_groups(decoys, bank_key))
        }
        aggressor_counters = {
            counter
            for group in comet_counter_groups(aggressors, bank_key)
            for counter in group
        }
        pivot_group = groups[decoys[0]]
        colliding = sum(
            1 for row in decoys[1:] if groups[row] & pivot_group
        )
        # Every decoy is invisible to the aggressors' counters...
        for row in decoys:
            assert not groups[row] & aggressor_counters
        # ... and the bank is large enough that the pivot collisions the
        # search asks for actually exist.
        assert colliding >= 8

    def test_counter_groups_match_comet_exactly(self, dram_config):
        """The whitebox reconstruction uses the very hash family a
        default-configured CoMeT builds for the same bank."""
        from repro.core.comet import CoMeT

        comet = CoMeT(nrh=125)
        bank_key = (0, 1, 1, 0)
        tracker = comet.bank_tracker(bank_key)
        rows = [7, 99, 511, 513, 2048]
        predicted = comet_counter_groups(rows, bank_key)
        for row, group in zip(rows, predicted):
            assert [column for _, column in group] == tracker.counter_table.counter_group(row)

    def test_trace_alternates_aggressors_and_decoys(self, dram_config):
        mapper = AddressMapper(dram_config)
        trace = synth_sketch_aliasing(
            num_requests=40, dram_config=dram_config, seed=0, target_row=512,
            decoys_per_round=2,
        )
        rows = [mapper.decode(entry.address).row for entry in trace]
        # Rounds of (a1, a2, decoy, decoy).
        for i in range(0, 36, 4):
            assert rows[i] == 511 and rows[i + 1] == 513
            assert rows[i + 2] not in (511, 513)
            assert rows[i + 3] not in (511, 513)


class TestWaveAndUniformShapes:
    def test_refresh_wave_gaps_span_a_reset_period(self, dram_config):
        trace = synth_refresh_wave(
            num_requests=60, dram_config=dram_config, seed=0, burst_activations=10
        )
        gaps = [e.bubble_count for e in trace if e.bubble_count > 0]
        assert gaps, "wave pattern lost its idle gaps"
        # Gap >= one counter-reset period (tREFW / 3) at the core's issue rate.
        reset_period = dram_config.tREFW // 3
        min_cycles = min(gaps) / 12.0  # Table 2 core: 4-wide x 3x clock ratio
        assert min_cycles >= reset_period

    def test_uniform_spreads_rows(self, dram_config):
        trace = synth_uniform(num_requests=500, dram_config=dram_config, seed=0)
        stats = trace.statistics()
        assert stats.unique_addresses > 400
