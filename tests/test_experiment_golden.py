"""Golden equivalence: spec-driven runs are bit-identical to the legacy shims.

The deprecated ``repro.sim.runner`` helpers are kept precisely because their
outputs are pinned by the channel-fabric golden file; this suite pins the
other side of the contract: for **every** mitigation in the registry, running
the same experiment through ``run_single_core`` and through an equivalent
:class:`~repro.experiment.spec.ExperimentSpec` executed by a
:class:`~repro.experiment.session.Session` must produce *identical*
:class:`~repro.sim.system.SimulationResult` objects — every cycle count,
energy figure and mitigation statistic, not just headline IPC.  The same is
checked for a multi-core mix and for an attack trace with generator
parameters.
"""

import warnings

import pytest

from repro.experiment.registry import mitigation_names
from repro.experiment.session import Session
from repro.experiment.spec import (
    ExperimentSpec,
    MitigationSpec,
    PlatformSpec,
    WorkloadSpec,
)
from repro.workloads.attacks import traditional_rowhammer_attack
from repro.workloads.suite import build_multicore_traces, build_trace

NRH = 250
NUM_REQUESTS = 800


@pytest.fixture(scope="module")
def session():
    return Session(use_cache=False, max_workers=0)


@pytest.fixture(scope="module")
def dram_config():
    from repro.sim.runner import default_experiment_config

    return default_experiment_config()


def run_legacy(*args, **kwargs):
    from repro.sim.runner import run_single_core

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return run_single_core(*args, **kwargs)


def assert_identical(legacy, spec_driven):
    """Field-by-field equality of two SimulationResult dataclasses."""
    assert legacy.__dict__ == spec_driven.__dict__


@pytest.mark.parametrize("mitigation", mitigation_names())
def test_single_core_matches_shim(mitigation, session, dram_config):
    trace = build_trace("450.soplex", num_requests=NUM_REQUESTS, dram_config=dram_config)
    legacy = run_legacy(
        trace,
        mitigation,
        nrh=NRH,
        dram_config=dram_config,
        verify_security=mitigation != "none",
    )
    record = session.run(
        ExperimentSpec(
            workload=WorkloadSpec(name="450.soplex", num_requests=NUM_REQUESTS),
            mitigation=MitigationSpec(name=mitigation, nrh=NRH),
            verify_security=mitigation != "none",
        )
    )
    assert_identical(legacy, record.result)


def test_multicore_matches_shim(session, dram_config):
    from repro.sim.runner import run_multi_core

    mix = build_multicore_traces(
        "429.mcf", num_cores=2, num_requests=600, dram_config=dram_config
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = run_multi_core(
            mix, "comet", nrh=NRH, dram_config=dram_config, name="429.mcf_x2"
        )
    record = session.run(
        ExperimentSpec(
            workload=WorkloadSpec(name="429.mcf", num_requests=600, num_cores=2),
            mitigation=MitigationSpec(name="comet", nrh=NRH),
        )
    )
    assert_identical(legacy, record.result)


def test_attack_with_params_matches_shim(session, dram_config):
    attack = traditional_rowhammer_attack(
        num_requests=1000, dram_config=dram_config, aggressor_rows_per_bank=2
    )
    legacy = run_legacy(attack, "comet", nrh=125, dram_config=dram_config)
    record = session.run(
        ExperimentSpec(
            workload=WorkloadSpec(
                name="attack_traditional",
                num_requests=1000,
                params={"aggressor_rows_per_bank": 2},
            ),
            mitigation=MitigationSpec(name="comet", nrh=125),
        )
    )
    assert_identical(legacy, record.result)


def test_multichannel_matches_shim(session):
    """2-channel fabric: per-channel mitigation construction (incl. the
    seedable per-channel seeding) must agree between both paths."""
    from repro.sim.runner import default_experiment_config

    dram_config = default_experiment_config(channels=2)
    trace = build_trace("mc_stream", num_requests=800, dram_config=dram_config)
    legacy = run_legacy(trace, "para", nrh=NRH, dram_config=dram_config)
    record = session.run(
        ExperimentSpec(
            workload=WorkloadSpec(name="mc_stream", num_requests=800),
            mitigation=MitigationSpec(name="para", nrh=NRH),
            platform=PlatformSpec(channels=2),
        )
    )
    assert_identical(legacy, record.result)


def test_overrides_match_shim(session, dram_config):
    from repro.core.config import CoMeTConfig

    config = CoMeTConfig(nrh=NRH, num_hashes=2, rat_entries=64)
    trace = build_trace("502.gcc", num_requests=600, dram_config=dram_config)
    legacy = run_legacy(
        trace,
        "comet",
        nrh=NRH,
        dram_config=dram_config,
        mitigation_overrides={"config": config},
    )
    record = session.run(
        ExperimentSpec(
            workload=WorkloadSpec(name="502.gcc", num_requests=600),
            mitigation=MitigationSpec(
                name="comet", nrh=NRH, overrides={"config": config}
            ),
        )
    )
    assert_identical(legacy, record.result)
