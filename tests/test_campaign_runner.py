"""End-to-end campaign runner tests: the resumability acceptance suite.

The load-bearing assertions, straight from the subsystem's contract:

* a campaign killed mid-flight (here: stopped by ``budget``, the
  deterministic stand-in for SIGKILL — both leave a store with k completed
  cells and a reusable checkpoint) resumes with **zero recomputation** of
  completed cells, asserted via the store's counted hits;
* a 1-worker store and a 4-worker store are **bit-identical** over
  ``records/``;
* kill at *any* point (hypothesis over the kill index) converges to the
  same bytes as a straight-through run.

Grids are small (hundreds of requests per cell) so the whole file stays in
tier-1 time.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import CampaignRunner, MemoryQueue, ResultStore
from repro.experiment.session import Session
from repro.experiment.spec import CampaignSpec

# 2 workloads x 2 mitigations x 2 nrhs + 2 baselines = 10 cells.
GRID = CampaignSpec(
    name="accept",
    workloads=("429.mcf", "synth_uniform"),
    mitigations=("para", "graphene"),
    nrhs=(250, 500),
    num_requests=300,
)

# 1 workload x 2 mitigations x 1 nrh + 1 baseline = 3 cells (property test).
SMALL = CampaignSpec(
    name="tiny",
    workloads=("synth_uniform",),
    mitigations=("para", "graphene"),
    nrhs=(250,),
    num_requests=200,
)


def snapshot_records(store: ResultStore):
    """Relative path -> bytes for every record file (byte-level identity)."""
    return {
        str(path.relative_to(store.records_dir)): path.read_bytes()
        for path in sorted(store.records_dir.rglob("*.json"))
    }


class TestResume:
    def test_kill_and_resume_with_zero_recompute(self, tmp_path):
        """The acceptance test: run k cells, 'die', resume, finish.

        The resume run must (a) skip every completed cell via counted
        store hits at enqueue time and (b) execute exactly total - k
        cells — zero recomputation.
        """
        store = ResultStore(tmp_path / "store")
        total = GRID.total_cells()
        assert total == 10
        k = 4

        first = CampaignRunner(GRID, store=store, queue="sqlite", budget=k).run()
        assert first.executed == k
        assert first.completed == k
        assert not first.finished
        assert first.pending == total - k

        # "Crash": the first runner object is gone.  A fresh runner on the
        # same store + queue path picks the campaign back up.
        store2 = ResultStore(tmp_path / "store")
        runner2 = CampaignRunner(GRID, store=store2, queue="sqlite")
        final = runner2.run()

        assert final.finished and final.completed == total
        # Zero recomputation, asserted two ways: the enqueue skip count
        # grew the store's hit counter once per completed cell...
        assert store2.hits == k
        assert runner2.last_enqueue == {
            "total": total,
            "complete": k,
            "enqueued": 0,  # still pending in the persistent queue
            "already_queued": total - k,
        }
        # ... and the resume executed exactly the missing cells.
        assert final.executed == total - k

    def test_finished_campaign_reruns_for_free(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        CampaignRunner(SMALL, store=store).run()
        again = CampaignRunner(SMALL, store=store).run()
        assert again.finished
        assert again.executed == 0

    def test_checkpoint_written_at_enqueue(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(SMALL, store=store, budget=1)
        runner.run()
        state = store.load_campaign(SMALL.campaign_id())
        assert state is not None
        assert CampaignSpec.from_dict(state["campaign"]) == SMALL
        assert state["total"] == SMALL.total_cells()


class TestDeterminism:
    def test_workers_1_and_4_produce_bit_identical_stores(self, tmp_path):
        serial = ResultStore(tmp_path / "serial")
        CampaignRunner(GRID, store=serial, max_workers=1).run()

        parallel = ResultStore(tmp_path / "parallel")
        status = CampaignRunner(GRID, store=parallel, max_workers=4).run()

        assert status.finished
        a, b = snapshot_records(serial), snapshot_records(parallel)
        assert a.keys() == b.keys()
        assert a == b, "worker count leaked into record bytes"

    @settings(max_examples=4, deadline=None)
    @given(kill_at=st.integers(min_value=0, max_value=SMALL.total_cells()))
    def test_kill_at_random_point_resumes_to_identical_bytes(
        self, tmp_path_factory, reference_small_store, kill_at
    ):
        """Property: for every kill point k, budget-k run + resume produces
        a store byte-identical to an uninterrupted run."""
        root = tmp_path_factory.mktemp("killpoint")
        store = ResultStore(root / "store")
        partial = CampaignRunner(
            SMALL, store=store, queue="directory", budget=kill_at
        ).run()
        assert partial.executed == kill_at

        resumed = CampaignRunner(store=store, queue="directory", campaign=SMALL).run()
        assert resumed.finished
        assert snapshot_records(store) == reference_small_store


@pytest.fixture(scope="module")
def reference_small_store(tmp_path_factory):
    store = ResultStore(tmp_path_factory.mktemp("reference") / "store")
    status = CampaignRunner(SMALL, store=store).run()
    assert status.finished
    return snapshot_records(store)


class TestScheduling:
    def test_baselines_drain_before_mitigated_cells(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        queue = MemoryQueue()
        runner = CampaignRunner(GRID, store=store, queue=queue)
        runner.enqueue()

        by_hash = {spec.content_hash(): spec for spec, _ in GRID.cells()}
        order = []
        while True:
            item = queue.claim("probe")
            if item is None:
                break
            order.append(by_hash[item.key].mitigation.name)
        n_baselines = sum(1 for name in order if name == "none")
        assert order[:n_baselines] == ["none"] * n_baselines
        assert n_baselines == 2

    def test_priority_overrides_order_the_queue(self, tmp_path):
        campaign = CampaignSpec(
            name="prio",
            workloads=("429.mcf",),
            mitigations=("para", "graphene"),
            nrhs=(250,),
            num_requests=200,
            include_baseline=False,
            priorities={"graphene": 5},
        )
        queue = MemoryQueue()
        CampaignRunner(
            campaign, store=ResultStore(tmp_path / "store"), queue=queue
        ).enqueue()
        by_hash = {s.content_hash(): s for s, _ in campaign.cells()}
        first = by_hash[queue.claim("probe").key]
        assert first.mitigation.name == "graphene"

    def test_budget_zero_enqueues_but_executes_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        status = CampaignRunner(SMALL, store=store, budget=0).run()
        assert status.executed == 0
        assert status.completed == 0
        assert status.pending == SMALL.total_cells()


class TestCrashRecovery:
    def test_expired_foreign_lease_is_stolen_and_finished(self, tmp_path):
        """An item claimed by a dead worker (lease about to lapse) must be
        reclaimed by the next runner and executed to completion."""
        store = ResultStore(tmp_path / "store")
        queue = MemoryQueue()
        runner = CampaignRunner(SMALL, store=store, queue=queue, poll_interval=0.01)
        runner.enqueue()
        stolen = queue.claim("dead-worker", lease=0.15)
        assert stolen is not None

        status = runner.run()
        assert status.finished
        # The dead worker's ack is refused after the steal.
        assert queue.ack(stolen.key, "dead-worker") is False

    def test_store_first_ack_second(self, tmp_path, monkeypatch):
        """A crash between store and ack re-executes (never loses) a cell:
        if the ack never happens the record must already be on disk."""
        store = ResultStore(tmp_path / "store")
        queue = MemoryQueue()
        runner = CampaignRunner(SMALL, store=store, queue=queue, budget=1)

        acked = []
        real_ack = queue.ack

        def spy_ack(key, worker):
            assert store.contains(key), "acked a cell whose record is not on disk"
            acked.append(key)
            return real_ack(key, worker)

        monkeypatch.setattr(queue, "ack", spy_ack)
        runner.run()
        assert len(acked) == 1


class TestSessionIntegration:
    def test_session_campaign_and_store_sharing(self, tmp_path):
        """Session.campaign() drains the grid; subsequent Session.run() of a
        member cell is answered from the shared store, not re-simulated."""
        session = Session(max_workers=0, store=tmp_path / "store", use_cache=False)
        status = session.campaign(SMALL)
        assert status.finished

        spec, _ = SMALL.cells()[0]
        record = session.run(spec)
        assert record.result.ipc > 0
        assert session.cache_hits >= 1
        assert session.store.hits >= 1

    def test_session_campaign_requires_a_store(self):
        with pytest.raises(ValueError, match="needs a result store"):
            Session(max_workers=0, use_cache=False).campaign(SMALL)


class TestStatus:
    def test_status_from_state_needs_only_the_store(self, tmp_path):
        from repro.campaign.runner import status_from_state

        store = ResultStore(tmp_path / "store")
        CampaignRunner(SMALL, store=store, budget=1).run()
        state = store.load_campaign(SMALL.campaign_id())
        status = status_from_state(store, state)
        assert status.total == SMALL.total_cells()
        assert status.completed == 1
        assert not status.finished

    def test_status_row_shape(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        status = CampaignRunner(SMALL, store=store).run()
        row = status.as_row()
        assert row["completed"] == f"{SMALL.total_cells()}/{SMALL.total_cells()}"
        assert len(row["campaign"]) == 12

    def test_worker_id_defaults_to_host_and_pid(self, tmp_path):
        runner = CampaignRunner(SMALL, store=ResultStore(tmp_path / "s"))
        assert str(os.getpid()) in runner.worker_id
