"""Tests for the DRAM energy model."""

import pytest

from repro.dram.dram_system import DRAMStatistics
from repro.energy.model import DRAMEnergyModel
from repro.energy.params import DDR4EnergyParameters


def stats(acts=0, reads=0, writes=0, refreshes=0, preventive_acts=0):
    return DRAMStatistics(
        acts=acts,
        pres=acts,
        reads=reads,
        writes=writes,
        refreshes=refreshes,
        preventive_acts=preventive_acts,
    )


class TestParameters:
    def test_background_energy_scales_with_time(self):
        params = DDR4EnergyParameters()
        assert params.background_energy_nj(2000) == pytest.approx(
            2 * params.background_energy_nj(1000)
        )

    def test_background_energy_value(self):
        params = DDR4EnergyParameters(background_power_mw=100.0, tck_ns=1.0)
        # 100 mW for 1e6 ns = 1e-4 J = 1e5 nJ.
        assert params.background_energy_nj(1_000_000) == pytest.approx(1e5)


class TestEnergyModel:
    def test_per_command_accounting(self):
        model = DRAMEnergyModel(num_ranks=1)
        params = model.parameters
        breakdown = model.energy(stats(acts=10, reads=5, writes=3, refreshes=2), total_cycles=0)
        assert breakdown.activation_nj == pytest.approx(10 * params.act_pre_energy_nj)
        assert breakdown.read_nj == pytest.approx(5 * params.read_energy_nj)
        assert breakdown.write_nj == pytest.approx(3 * params.write_energy_nj)
        assert breakdown.refresh_nj == pytest.approx(2 * params.refresh_energy_nj)

    def test_background_scales_with_rank_count(self):
        single = DRAMEnergyModel(num_ranks=1).energy(stats(), 10_000)
        dual = DRAMEnergyModel(num_ranks=2).energy(stats(), 10_000)
        assert dual.background_nj == pytest.approx(2 * single.background_nj)

    def test_preventive_energy_attributed(self):
        model = DRAMEnergyModel(num_ranks=1)
        breakdown = model.energy(stats(acts=10, preventive_acts=4), 0)
        assert breakdown.preventive_nj == pytest.approx(4 * model.parameters.act_pre_energy_nj)
        # Preventive energy is a subset of activation energy, not extra.
        assert breakdown.preventive_nj < breakdown.activation_nj

    def test_total_is_sum_of_components(self):
        model = DRAMEnergyModel(num_ranks=2)
        breakdown = model.energy(stats(acts=100, reads=50, writes=20, refreshes=5), 100_000)
        assert breakdown.total_nj == pytest.approx(
            breakdown.activation_nj
            + breakdown.read_nj
            + breakdown.write_nj
            + breakdown.refresh_nj
            + breakdown.background_nj
        )

    def test_normalized_energy(self):
        model = DRAMEnergyModel(num_ranks=1)
        base = stats(acts=100, reads=100)
        more = stats(acts=150, reads=100)
        normalized = model.normalized_energy(more, 10_000, base, 10_000)
        assert normalized > 1.0

    def test_normalized_energy_identity(self):
        model = DRAMEnergyModel(num_ranks=1)
        base = stats(acts=100, reads=100)
        assert model.normalized_energy(base, 10_000, base, 10_000) == pytest.approx(1.0)

    def test_more_preventive_refreshes_increase_energy(self):
        """The mechanism-level effect behind Figures 11/14: extra ACTs cost energy."""
        model = DRAMEnergyModel(num_ranks=2)
        baseline = model.energy(stats(acts=1000, reads=800, writes=200), 1_000_000)
        protected = model.energy(stats(acts=1200, reads=800, writes=200, preventive_acts=200), 1_000_000)
        assert protected.total_nj > baseline.total_nj

    def test_longer_runtime_increases_energy(self):
        model = DRAMEnergyModel(num_ranks=2)
        short = model.energy(stats(acts=100), 100_000)
        long = model.energy(stats(acts=100), 200_000)
        assert long.total_nj > short.total_nj

    def test_as_dict(self):
        model = DRAMEnergyModel(num_ranks=1)
        d = model.energy(stats(acts=1), 100).as_dict()
        assert set(d) == {
            "activation_nj",
            "read_nj",
            "write_nj",
            "refresh_nj",
            "background_nj",
            "preventive_nj",
            "total_nj",
        }

    def test_invalid_rank_count(self):
        with pytest.raises(ValueError):
            DRAMEnergyModel(num_ranks=0)
