"""Tests for the DRAM energy model."""

import pytest

from repro.dram.dram_system import DRAMStatistics
from repro.energy.model import DRAMEnergyModel
from repro.energy.params import DDR4EnergyParameters


def stats(acts=0, reads=0, writes=0, refreshes=0, preventive_acts=0):
    return DRAMStatistics(
        acts=acts,
        pres=acts,
        reads=reads,
        writes=writes,
        refreshes=refreshes,
        preventive_acts=preventive_acts,
    )


class TestParameters:
    def test_background_energy_scales_with_time(self):
        params = DDR4EnergyParameters()
        assert params.background_energy_nj(2000) == pytest.approx(
            2 * params.background_energy_nj(1000)
        )

    def test_background_energy_value(self):
        params = DDR4EnergyParameters(background_power_mw=100.0, tck_ns=1.0)
        # 100 mW for 1e6 ns = 1e-4 J = 1e5 nJ.
        assert params.background_energy_nj(1_000_000) == pytest.approx(1e5)


class TestEnergyModel:
    def test_per_command_accounting(self):
        model = DRAMEnergyModel(num_ranks=1)
        params = model.parameters
        breakdown = model.energy(stats(acts=10, reads=5, writes=3, refreshes=2), total_cycles=0)
        assert breakdown.activation_nj == pytest.approx(10 * params.act_pre_energy_nj)
        assert breakdown.read_nj == pytest.approx(5 * params.read_energy_nj)
        assert breakdown.write_nj == pytest.approx(3 * params.write_energy_nj)
        assert breakdown.refresh_nj == pytest.approx(2 * params.refresh_energy_nj)

    def test_background_scales_with_rank_count(self):
        single = DRAMEnergyModel(num_ranks=1).energy(stats(), 10_000)
        dual = DRAMEnergyModel(num_ranks=2).energy(stats(), 10_000)
        assert dual.background_nj == pytest.approx(2 * single.background_nj)

    def test_preventive_energy_attributed(self):
        model = DRAMEnergyModel(num_ranks=1)
        breakdown = model.energy(stats(acts=10, preventive_acts=4), 0)
        assert breakdown.preventive_nj == pytest.approx(4 * model.parameters.act_pre_energy_nj)
        # Preventive energy is a subset of activation energy, not extra.
        assert breakdown.preventive_nj < breakdown.activation_nj

    def test_total_is_sum_of_components(self):
        model = DRAMEnergyModel(num_ranks=2)
        breakdown = model.energy(stats(acts=100, reads=50, writes=20, refreshes=5), 100_000)
        assert breakdown.total_nj == pytest.approx(
            breakdown.activation_nj
            + breakdown.read_nj
            + breakdown.write_nj
            + breakdown.refresh_nj
            + breakdown.background_nj
        )

    def test_normalized_energy(self):
        model = DRAMEnergyModel(num_ranks=1)
        base = stats(acts=100, reads=100)
        more = stats(acts=150, reads=100)
        normalized = model.normalized_energy(more, 10_000, base, 10_000)
        assert normalized > 1.0

    def test_normalized_energy_identity(self):
        model = DRAMEnergyModel(num_ranks=1)
        base = stats(acts=100, reads=100)
        assert model.normalized_energy(base, 10_000, base, 10_000) == pytest.approx(1.0)

    def test_more_preventive_refreshes_increase_energy(self):
        """The mechanism-level effect behind Figures 11/14: extra ACTs cost energy."""
        model = DRAMEnergyModel(num_ranks=2)
        baseline = model.energy(stats(acts=1000, reads=800, writes=200), 1_000_000)
        protected = model.energy(stats(acts=1200, reads=800, writes=200, preventive_acts=200), 1_000_000)
        assert protected.total_nj > baseline.total_nj

    def test_longer_runtime_increases_energy(self):
        model = DRAMEnergyModel(num_ranks=2)
        short = model.energy(stats(acts=100), 100_000)
        long = model.energy(stats(acts=100), 200_000)
        assert long.total_nj > short.total_nj

    def test_as_dict(self):
        model = DRAMEnergyModel(num_ranks=1)
        d = model.energy(stats(acts=1), 100).as_dict()
        assert set(d) == {
            "activation_nj",
            "read_nj",
            "write_nj",
            "refresh_nj",
            "background_nj",
            "preventive_nj",
            "total_nj",
        }

    def test_invalid_rank_count(self):
        with pytest.raises(ValueError):
            DRAMEnergyModel(num_ranks=0)


class TestRefreshRowAccounting:
    """Refresh energy is charged by rows covered, not by REF command count.

    The 28 nJ ``refresh_energy_nj`` calibration is for an *all-bank* REF
    covering ``rows_per_refresh`` rows.  Fine-granularity refresh issues
    REF 2x/4x as often with each command covering proportionally fewer
    rows; charging the flat per-REF constant overcharged FGR runs 2-4x.
    """

    def test_row_scaled_charge_matches_flat_charge_for_all_bank(self):
        """All-bank REFs make the two formulas agree exactly: every REF
        covers exactly ``rows_per_refresh`` rows."""
        model = DRAMEnergyModel(num_ranks=1)
        s = stats(refreshes=10)
        s.refresh_rows = 10 * 16
        charged = model.energy(s, 100_000, rows_per_refresh=16)
        legacy = model.energy(stats(refreshes=10), 100_000)
        assert charged.refresh_nj == pytest.approx(legacy.refresh_nj)
        assert charged.refresh_nj == pytest.approx(
            10 * DDR4EnergyParameters().refresh_energy_nj
        )

    def test_same_rows_same_energy_regardless_of_granularity(self):
        """2x/4x as many REFs covering the same total rows cost the same."""
        model = DRAMEnergyModel(num_ranks=1)
        breakdowns = []
        for granularity in (1, 2, 4):
            s = stats(refreshes=10 * granularity)
            s.refresh_rows = 160  # the same total row coverage each time
            breakdowns.append(model.energy(s, 100_000, rows_per_refresh=16))
        assert (
            breakdowns[0].refresh_nj
            == breakdowns[1].refresh_nj
            == breakdowns[2].refresh_nj
        )

    def test_without_row_tracking_falls_back_to_flat_charge(self):
        """Legacy stats (no refresh_rows) keep the historical accounting."""
        model = DRAMEnergyModel(num_ranks=1)
        flat = model.energy(stats(refreshes=7), 100_000, rows_per_refresh=16)
        assert flat.refresh_nj == pytest.approx(
            7 * DDR4EnergyParameters().refresh_energy_nj
        )

    def test_ddr5_terms_enter_total_and_as_dict_only_when_nonzero(self):
        model = DRAMEnergyModel(num_ranks=1)
        s = stats(acts=10)
        s.rfms = 4
        s.in_dram_refresh_rows = 8
        s.counter_updates = 100
        params = DDR4EnergyParameters()
        breakdown = model.energy(s, 100_000)
        assert breakdown.rfm_nj == pytest.approx(4 * params.rfm_energy_nj)
        assert breakdown.in_dram_refresh_nj == pytest.approx(
            8 * params.row_refresh_energy_nj
        )
        assert breakdown.counter_nj == pytest.approx(
            100 * params.counter_update_energy_nj
        )
        assert breakdown.total_nj == pytest.approx(
            breakdown.activation_nj
            + breakdown.background_nj
            + breakdown.rfm_nj
            + breakdown.in_dram_refresh_nj
            + breakdown.counter_nj
        )
        d = breakdown.as_dict()
        assert {"rfm_nj", "in_dram_refresh_nj", "counter_nj"} <= set(d)

    def test_normalized_energy_zero_baseline_raises(self):
        """A zero-energy baseline means mis-wired statistics; 1.0 would
        masquerade as 'no overhead'."""
        model = DRAMEnergyModel(num_ranks=1)
        run = stats(acts=100, reads=100)
        with pytest.raises(ValueError, match="baseline energy is zero"):
            model.normalized_energy(run, 10_000, stats(), 0)


class TestFGRGranularityInvariance:
    """End to end: the refresh *power* of a run is granularity-invariant.

    The same benign workload under all-bank, FGR-2x and FGR-4x must spend
    the same refresh energy per cycle to within boundary effects (the per-
    REF ceil on row coverage and where REFs fall relative to the run's
    edges).  Under the old flat per-REF charge FGR-2x/4x came out 2x/4.6x
    higher - the overcharge this pins against."""

    @pytest.fixture(scope="class")
    def refresh_rates(self):
        from repro.experiment.execute import execute_spec
        from repro.experiment.spec import ExperimentSpec

        rates = {}
        for granularity in (1, 2, 4):
            data = {
                "workload": {"name": "synth_uniform", "num_requests": 10000},
                "mitigation": {"name": "none", "nrh": 1},
                "verify_security": False,
            }
            if granularity != 1:
                data["platform"] = {
                    "controller": {
                        "refresh_policy": "fine_granularity",
                        "params": {"refresh_granularity": granularity},
                    }
                }
            result = execute_spec(ExperimentSpec.from_dict(data))
            rates[granularity] = (
                result.energy.as_dict()["refresh_nj"] / result.cycles,
                result.dram_stats["refreshes"],
                result.cycles,
            )
        return rates

    def test_fgr_rates_match_all_bank(self, refresh_rates):
        base_rate = refresh_rates[1][0]
        for granularity in (2, 4):
            rate = refresh_rates[granularity][0]
            assert rate == pytest.approx(base_rate, rel=0.10), (
                f"FGR-{granularity}x refresh power {rate:.3e} nJ/cycle vs "
                f"all-bank {base_rate:.3e}"
            )

    def test_flat_charge_would_not_pass(self, refresh_rates):
        """The counterfactual: charging 28 nJ per REF makes FGR-2x/4x
        refresh power ~2x/~4x the all-bank rate."""
        base_rate = refresh_rates[1][0]
        refresh_nj = DDR4EnergyParameters().refresh_energy_nj
        for granularity in (2, 4):
            _, refreshes, cycles = refresh_rates[granularity]
            flat_rate = refreshes * refresh_nj / cycles
            assert flat_rate > base_rate * (granularity * 0.8)
