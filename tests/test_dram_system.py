"""Tests for the rank/channel-level DRAM device model."""

import pytest

from repro.dram.bank import TimingViolation
from repro.dram.commands import Command, CommandKind
from repro.dram.dram_system import DRAMSystem


@pytest.fixture
def system(tiny_dram_config):
    return DRAMSystem(tiny_dram_config)


def act(row=0, bank=0, bankgroup=0, rank=0, preventive=False):
    return Command(
        CommandKind.ACT, rank=rank, bankgroup=bankgroup, bank=bank, row=row,
        is_preventive=preventive,
    )


def pre(bank=0, bankgroup=0, rank=0):
    return Command(CommandKind.PRE, rank=rank, bankgroup=bankgroup, bank=bank)


def rd(column=0, bank=0, bankgroup=0, rank=0):
    return Command(CommandKind.RD, rank=rank, bankgroup=bankgroup, bank=bank, column=column)


def wr(column=0, bank=0, bankgroup=0, rank=0):
    return Command(CommandKind.WR, rank=rank, bankgroup=bankgroup, bank=bank, column=column)


class TestCommandValidation:
    def test_act_requires_row(self):
        with pytest.raises(ValueError):
            Command(CommandKind.ACT)

    def test_rd_requires_column(self):
        with pytest.raises(ValueError):
            Command(CommandKind.RD)

    def test_describe_mentions_kind(self):
        command = act(row=5)
        assert "ACT" in command.describe()
        assert "row5" in command.describe()


class TestBasicSequences:
    def test_act_read_pre_sequence(self, system, tiny_dram_config):
        timing = tiny_dram_config.timing
        system.issue(act(row=3), 0)
        data_end = system.issue(rd(column=0), timing.tRCD)
        assert data_end == timing.tRCD + timing.tCL + timing.tBURST
        pre_cycle = max(timing.tRAS, timing.tRCD + timing.tRTP)
        system.issue(pre(), pre_cycle)
        assert system.stats.acts == 1
        assert system.stats.reads == 1
        assert system.stats.pres == 1

    def test_earliest_issue_respects_trcd(self, system, tiny_dram_config):
        timing = tiny_dram_config.timing
        system.issue(act(row=3), 0)
        assert system.earliest_issue_cycle(rd(), 0) == timing.tRCD

    def test_early_command_raises(self, system):
        system.issue(act(row=3), 0)
        with pytest.raises(TimingViolation):
            system.issue(rd(), 1)

    def test_write_then_read_turnaround(self, system, tiny_dram_config):
        timing = tiny_dram_config.timing
        system.issue(act(row=3), 0)
        write_cycle = timing.tRCD
        system.issue(wr(), write_cycle)
        earliest_read = system.earliest_issue_cycle(rd(), write_cycle + 1)
        assert earliest_read >= write_cycle + timing.tCWL + timing.tBURST + timing.tWTR_L

    def test_command_bus_one_command_per_cycle(self, system, tiny_dram_config):
        system.issue(act(row=3, bank=0), 0)
        other_bank_act = act(row=3, bank=1)
        assert system.earliest_issue_cycle(other_bank_act, 0) >= 1


class TestInterBankConstraints:
    def test_trrd_between_activations(self, system, tiny_dram_config):
        timing = tiny_dram_config.timing
        system.issue(act(row=1, bankgroup=0, bank=0), 0)
        same_group = act(row=1, bankgroup=0, bank=1)
        other_group = act(row=1, bankgroup=1, bank=0)
        assert system.earliest_issue_cycle(same_group, 0) >= timing.tRRD_L
        assert system.earliest_issue_cycle(other_group, 0) >= timing.tRRD_S

    def test_tfaw_limits_burst_of_activations(self, system, tiny_dram_config):
        timing = tiny_dram_config.timing
        config = tiny_dram_config.organization
        cycle = 0
        issued = []
        for i in range(4):
            bankgroup = i % config.bankgroups_per_rank
            bank = i // config.bankgroups_per_rank
            command = act(row=1, bankgroup=bankgroup, bank=bank)
            cycle = system.earliest_issue_cycle(command, cycle)
            system.issue(command, cycle)
            issued.append(cycle)
            cycle += 1
        # A fifth activation (to a different bank) must wait for the tFAW window.
        fifth = act(row=1, bankgroup=1, bank=1)
        assert system.earliest_issue_cycle(fifth, cycle) >= issued[0] + timing.tFAW

    def test_data_bus_serializes_reads_across_banks(self, system, tiny_dram_config):
        timing = tiny_dram_config.timing
        system.issue(act(row=1, bankgroup=0, bank=0), 0)
        second_act = act(row=1, bankgroup=1, bank=0)
        act2_cycle = system.earliest_issue_cycle(second_act, 0)
        system.issue(second_act, act2_cycle)
        first_rd_cycle = system.earliest_issue_cycle(rd(bankgroup=0, bank=0), 0)
        end1 = system.issue(rd(bankgroup=0, bank=0), first_rd_cycle)
        second_rd = rd(bankgroup=1, bank=0)
        second_cycle = system.earliest_issue_cycle(second_rd, first_rd_cycle)
        end2 = system.issue(second_rd, second_cycle)
        assert end2 >= end1 + timing.tBURST


class TestRefresh:
    def test_refresh_blocks_rank(self, system, tiny_dram_config):
        timing = tiny_dram_config.timing
        result = system.issue(Command(CommandKind.REF, rank=0), 0)
        assert result == timing.tRFC
        assert system.earliest_issue_cycle(act(row=0), 0) >= timing.tRFC

    def test_refresh_with_open_bank_rejected(self, system):
        system.issue(act(row=1), 0)
        with pytest.raises(TimingViolation):
            system.issue(Command(CommandKind.REF, rank=0), 10)

    def test_refresh_advances_row_pointer(self, system, tiny_dram_config):
        timing = tiny_dram_config.timing
        rank = system.rank(0, 0)
        assert rank.refresh_row_pointer == 0
        system.issue(Command(CommandKind.REF, rank=0), 0)
        assert rank.refresh_row_pointer == tiny_dram_config.rows_per_refresh
        system.issue(Command(CommandKind.REF, rank=0), timing.tRFC)
        assert rank.refresh_row_pointer == 2 * tiny_dram_config.rows_per_refresh


class TestObservers:
    def test_activation_observer_called(self, system):
        seen = []
        system.add_activation_observer(lambda cycle, addr, prev: seen.append((cycle, addr.row, prev)))
        system.issue(act(row=9), 0)
        assert seen == [(0, 9, False)]

    def test_preventive_act_notifies_row_refresh(self, system):
        refreshed = []
        system.add_row_refresh_observer(lambda cycle, addr: refreshed.append(addr.row))
        system.issue(act(row=9, preventive=True), 0)
        assert refreshed == [9]

    def test_refresh_observer_reports_row_range(self, system, tiny_dram_config):
        seen = []
        system.add_refresh_observer(lambda cycle, rank, start, count: seen.append((rank, start, count)))
        system.issue(Command(CommandKind.REF, rank=0), 0)
        assert seen == [((0, 0), 0, tiny_dram_config.rows_per_refresh)]


class TestStatistics:
    def test_row_activation_counts(self, system, tiny_dram_config):
        timing = tiny_dram_config.timing
        system.issue(act(row=5), 0)
        system.issue(pre(), timing.tRAS)
        system.issue(act(row=5), timing.tRC)
        counts = system.row_activation_counts()
        assert counts[(0, 0, 0, 0, 5)] == 2

    def test_stats_as_dict(self, system):
        system.issue(act(row=1), 0)
        stats = system.stats.as_dict()
        assert stats["acts"] == 1
        assert stats["reads"] == 0
