"""Tests for the storage/area model (Tables 1 and 4)."""

import pytest

from repro.area.model import (
    AreaModel,
    area_comparison_table,
    comet_area_report,
    graphene_area_report,
    graphene_storage_table,
    hydra_area_report,
)


class TestCoMeTArea:
    def test_storage_matches_table4(self):
        """CoMeT total storage: 76.5 KiB at NRH=1K down to 51 KiB at NRH=125."""
        expected = {1000: 76.5, 500: 68.0, 250: 59.5, 125: 51.0}
        for nrh, kib in expected.items():
            report = comet_area_report(nrh)
            assert report.storage_kib == pytest.approx(kib, rel=0.01)

    def test_breakdown_matches_table4(self):
        report = comet_area_report(1000)
        assert report.breakdown_kib["CT"] == pytest.approx(64.0)
        assert report.breakdown_kib["RAT"] == pytest.approx(12.5)

    def test_area_in_table4_range(self):
        """Area: ~0.09 mm^2 at NRH=1K, ~0.07 mm^2 at NRH=125."""
        assert comet_area_report(1000).area_mm2 == pytest.approx(0.09, abs=0.02)
        assert comet_area_report(125).area_mm2 == pytest.approx(0.07, abs=0.02)

    def test_area_decreases_with_threshold(self):
        assert comet_area_report(125).area_mm2 < comet_area_report(1000).area_mm2


class TestGrapheneArea:
    def test_storage_grows_as_threshold_drops(self):
        """Table 1's trend: storage roughly inversely proportional to NRH."""
        storage = {nrh: graphene_area_report(nrh).storage_kib for nrh in (1000, 500, 250, 125)}
        assert storage[500] > 1.5 * storage[1000]
        assert storage[250] > 1.5 * storage[500]
        assert storage[125] > 1.5 * storage[250]

    def test_storage_order_of_magnitude_matches_table1(self):
        """~200 KiB at NRH=1K growing to >1 MiB at NRH=125 (within 2x of paper)."""
        at_1k = graphene_area_report(1000).storage_kib
        at_125 = graphene_area_report(125).storage_kib
        assert 100 < at_1k < 450
        assert 1000 < at_125 < 3000

    def test_table1_rows(self):
        rows = graphene_storage_table()
        assert [row["nrh"] for row in rows] == [1000, 500, 250, 125]
        assert all(row["storage_KiB"] > 0 for row in rows)


class TestHydraArea:
    def test_sram_storage_small_and_flat(self):
        at_1k = hydra_area_report(1000)
        at_125 = hydra_area_report(125)
        assert at_1k.storage_kib < 100
        # Hydra's SRAM need barely changes with the threshold.
        assert abs(at_1k.storage_kib - at_125.storage_kib) < 20

    def test_in_dram_counters_reported(self):
        report = hydra_area_report(1000)
        # ~4 MiB of in-DRAM counters (footnote 8 of the paper).
        assert report.breakdown_kib["in_DRAM_counters"] == pytest.approx(4096, rel=0.1)


class TestComparisons:
    def test_comet_vs_graphene_area_ratio(self):
        """The headline area claim: CoMeT needs several times less area than
        Graphene at NRH=1K, and the gap widens by an order of magnitude at 125."""
        ratio_1k = graphene_area_report(1000).area_mm2 / comet_area_report(1000).area_mm2
        ratio_125 = graphene_area_report(125).area_mm2 / comet_area_report(125).area_mm2
        assert ratio_1k > 3
        assert ratio_125 > 40
        assert ratio_125 > 5 * ratio_1k

    def test_comet_vs_hydra_similar_area(self):
        """CoMeT and Hydra have comparable processor-chip area (Section 7.3.1)."""
        for nrh in (1000, 125):
            comet = comet_area_report(nrh).area_mm2
            hydra = hydra_area_report(nrh).area_mm2
            assert 0.4 < comet / hydra < 2.5

    def test_comparison_table_has_all_mechanisms(self):
        reports = area_comparison_table([1000, 125])
        mechanisms = {(r.mechanism, r.nrh) for r in reports}
        assert ("CoMeT", 1000) in mechanisms
        assert ("Graphene", 125) in mechanisms
        assert ("Hydra", 125) in mechanisms
        assert len(reports) == 6


class TestAreaModel:
    def test_cam_denser_than_sram(self):
        model = AreaModel()
        assert model.cam_area(10) > model.sram_area(10)

    def test_report_row_format(self):
        row = comet_area_report(1000).as_row()
        assert set(row) == {"mechanism", "nrh", "storage_KiB", "area_mm2"}
