"""Tests for the Misra-Gries summary (Graphene's tracking algorithm)."""

import pytest

from repro.sketch.misra_gries import MisraGriesSummary, graphene_table_entries


class TestMisraGries:
    def test_tracked_item_counts_exactly_when_table_has_room(self):
        summary = MisraGriesSummary(num_entries=8)
        for _ in range(25):
            summary.update(3)
        assert summary.estimate(3) == 25
        assert summary.is_tracked(3)

    def test_estimate_is_upper_bound(self):
        """Misra-Gries never underestimates: estimate >= true count."""
        summary = MisraGriesSummary(num_entries=4)
        truth = {}
        stream = []
        for key in range(20):
            count = (key % 5) + 1
            truth[key] = count
            stream.extend([key] * count)
        # Interleave to exercise evictions.
        stream = stream[::2] + stream[1::2]
        for key in stream:
            summary.update(key)
        for key, count in truth.items():
            assert summary.estimate(key) >= count

    def test_spillover_grows_when_table_full(self):
        summary = MisraGriesSummary(num_entries=2)
        # Three heavy keys fight over two entries.
        for _ in range(10):
            summary.update(1)
            summary.update(2)
            summary.update(3)
        assert summary.spillover > 0
        # Untracked keys are estimated at the spillover value.
        assert summary.estimate(999) == summary.spillover

    def test_heavy_hitter_survives_light_noise(self):
        summary = MisraGriesSummary(num_entries=8)
        for i in range(400):
            summary.update(7)          # heavy hitter
            summary.update(1000 + i)   # a stream of one-off keys
        assert summary.is_tracked(7)
        assert summary.estimate(7) >= 400

    def test_reset(self):
        summary = MisraGriesSummary(num_entries=4)
        for key in range(10):
            summary.update(key)
        summary.reset()
        assert summary.occupancy == 0
        assert summary.spillover == 0
        assert summary.estimate(0) == 0

    def test_reset_key(self):
        summary = MisraGriesSummary(num_entries=4)
        summary.update(5, 10)
        summary.reset_key(5)
        assert summary.estimate(5) == summary.spillover

    def test_update_amount(self):
        summary = MisraGriesSummary(num_entries=4)
        assert summary.update(9, 7) == 7

    def test_negative_update_rejected(self):
        summary = MisraGriesSummary(num_entries=4)
        with pytest.raises(ValueError):
            summary.update(1, -1)

    def test_invalid_entry_count(self):
        with pytest.raises(ValueError):
            MisraGriesSummary(num_entries=0)

    def test_storage_bits(self):
        summary = MisraGriesSummary(num_entries=100, key_width_bits=17, counter_width_bits=12)
        assert summary.storage_bits == 100 * (17 + 12) + 12

    def test_tracked_items_snapshot(self):
        summary = MisraGriesSummary(num_entries=4)
        summary.update(1, 3)
        summary.update(2, 5)
        items = summary.tracked_items()
        assert items[1] == 3
        assert items[2] == 5


class TestGrapheneTableSizing:
    def test_entries_scale_inversely_with_threshold(self):
        window = 1_000_000
        entries_1k = graphene_table_entries(window, 250)
        entries_125 = graphene_table_entries(window, 31)
        assert entries_125 > entries_1k * 7

    def test_exact_division(self):
        assert graphene_table_entries(1000, 100) == 10

    def test_rounds_up(self):
        assert graphene_table_entries(1001, 100) == 11

    def test_minimum_one_entry(self):
        assert graphene_table_entries(0, 100) == 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            graphene_table_entries(1000, 0)
        with pytest.raises(ValueError):
            graphene_table_entries(-1, 10)
