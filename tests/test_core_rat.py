"""Tests for CoMeT's Recent Aggressor Table."""

import pytest

from repro.core.rat import RecentAggressorTable


class TestRAT:
    def test_allocate_and_lookup(self):
        rat = RecentAggressorTable(num_entries=4)
        rat.allocate(10, 0)
        assert rat.contains(10)
        assert rat.lookup(10) == 0
        assert rat.stats.hits == 1

    def test_lookup_miss(self):
        rat = RecentAggressorTable(num_entries=4)
        assert rat.lookup(99) is None
        assert rat.stats.misses == 1

    def test_increment(self):
        rat = RecentAggressorTable(num_entries=4)
        rat.allocate(5, 0)
        assert rat.increment(5) == 1
        assert rat.increment(5) == 2

    def test_increment_missing_entry_raises(self):
        rat = RecentAggressorTable(num_entries=4)
        with pytest.raises(KeyError):
            rat.increment(5)

    def test_set_existing_entry(self):
        rat = RecentAggressorTable(num_entries=4)
        rat.allocate(5, 7)
        rat.set(5, 0)
        assert rat.lookup(5) == 0

    def test_set_missing_entry_raises(self):
        rat = RecentAggressorTable(num_entries=4)
        with pytest.raises(KeyError):
            rat.set(5, 0)

    def test_allocation_of_existing_row_resets_value(self):
        rat = RecentAggressorTable(num_entries=4)
        rat.allocate(5, 3)
        evicted = rat.allocate(5, 0)
        assert evicted is None
        assert rat.lookup(5) == 0
        assert rat.occupancy == 1

    def test_random_eviction_when_full(self):
        rat = RecentAggressorTable(num_entries=3, seed=7)
        for row in range(3):
            assert rat.allocate(row, 0) is None
        assert rat.is_full
        evicted = rat.allocate(99, 0)
        assert evicted in {0, 1, 2}
        assert rat.contains(99)
        assert rat.occupancy == 3
        assert rat.stats.evictions == 1

    def test_eviction_is_deterministic_for_seed(self):
        def evicted_sequence(seed):
            rat = RecentAggressorTable(num_entries=4, seed=seed)
            for row in range(4):
                rat.allocate(row, 0)
            return [rat.allocate(100 + i, 0) for i in range(4)]

        assert evicted_sequence(3) == evicted_sequence(3)

    def test_reset(self):
        rat = RecentAggressorTable(num_entries=4)
        rat.allocate(1, 0)
        rat.reset()
        assert rat.occupancy == 0
        assert not rat.contains(1)

    def test_occupancy_pressure(self):
        rat = RecentAggressorTable(num_entries=2)
        rat.stats.misses = 10
        rat.stats.capacity_misses = 4
        assert rat.stats.occupancy_pressure == pytest.approx(0.4)

    def test_occupancy_pressure_no_misses(self):
        rat = RecentAggressorTable(num_entries=2)
        assert rat.stats.occupancy_pressure == 0.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            RecentAggressorTable(num_entries=0)

    def test_entries_snapshot_is_copy(self):
        rat = RecentAggressorTable(num_entries=4)
        rat.allocate(1, 5)
        snapshot = rat.entries_snapshot()
        snapshot[1] = 99
        assert rat.lookup(1) == 5
