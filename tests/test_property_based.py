"""Property-based tests (hypothesis) for the core data structures and invariants.

These check the properties the paper's security argument rests on:

* sketch structures (CMS, CMS-CU, counting Bloom filter, Misra-Gries) never
  underestimate an item's frequency for *any* update stream;
* the address mapper is a bijection between physical addresses and DRAM
  coordinates;
* CoMeT's activation-count estimate never underestimates the true per-row
  activation count within a counter-reset period, for arbitrary activation
  streams (Section 5's security claim);
* the Recent Aggressor Table never exceeds its capacity and never loses the
  row that was just allocated.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.comet import CoMeT
from repro.core.config import CoMeTConfig
from repro.core.rat import RecentAggressorTable
from repro.dram.address import AddressMapper
from repro.dram.config import small_test_config
from repro.sketch.count_min import ConservativeCountMinSketch, CountMinSketch, SketchConfig
from repro.sketch.counting_bloom import CountingBloomFilter
from repro.sketch.misra_gries import MisraGriesSummary
from tests.conftest import FakeController, make_address

# Keep row ids in a modest range so streams actually collide in the sketches.
row_ids = st.integers(min_value=0, max_value=4000)
streams = st.lists(row_ids, min_size=1, max_size=400)


class TestSketchNeverUnderestimates:
    @settings(max_examples=60, deadline=None)
    @given(stream=streams)
    def test_count_min(self, stream):
        sketch = CountMinSketch(SketchConfig(num_hashes=3, counters_per_hash=32, seed=1))
        for key in stream:
            sketch.update(key)
        truth = Counter(stream)
        assert all(sketch.estimate(k) >= c for k, c in truth.items())

    @settings(max_examples=60, deadline=None)
    @given(stream=streams)
    def test_conservative_count_min(self, stream):
        sketch = ConservativeCountMinSketch(
            SketchConfig(num_hashes=3, counters_per_hash=32, seed=1)
        )
        for key in stream:
            sketch.update(key)
        truth = Counter(stream)
        assert all(sketch.estimate(k) >= c for k, c in truth.items())

    @settings(max_examples=60, deadline=None)
    @given(stream=streams)
    def test_conservative_never_worse_than_plain(self, stream):
        plain = CountMinSketch(SketchConfig(num_hashes=3, counters_per_hash=32, seed=2))
        conservative = ConservativeCountMinSketch(
            SketchConfig(num_hashes=3, counters_per_hash=32, seed=2)
        )
        for key in stream:
            plain.update(key)
            conservative.update(key)
        for key in set(stream):
            assert conservative.estimate(key) <= plain.estimate(key)

    @settings(max_examples=60, deadline=None)
    @given(stream=streams)
    def test_counting_bloom(self, stream):
        cbf = CountingBloomFilter(num_counters=64, num_hashes=3, seed=1)
        for key in stream:
            cbf.update(key)
        truth = Counter(stream)
        assert all(cbf.estimate(k) >= c for k, c in truth.items())

    @settings(max_examples=60, deadline=None)
    @given(stream=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=300))
    def test_misra_gries(self, stream):
        summary = MisraGriesSummary(num_entries=8)
        for key in stream:
            summary.update(key)
        truth = Counter(stream)
        assert all(summary.estimate(k) >= c for k, c in truth.items())


class TestAddressMapperBijection:
    @settings(max_examples=100, deadline=None)
    @given(line_index=st.integers(min_value=0, max_value=1_000_000))
    def test_roundtrip(self, line_index):
        config = small_test_config(rows_per_bank=1024, ranks_per_channel=2)
        mapper = AddressMapper(config)
        address = line_index * config.organization.cacheline_bytes
        assert mapper.encode(mapper.decode(address)) == address

    @settings(max_examples=100, deadline=None)
    @given(
        row=st.integers(min_value=0, max_value=1023),
        bank_index=st.integers(min_value=0, max_value=7),
    )
    def test_address_for_row_decodes_back(self, row, bank_index):
        config = small_test_config(rows_per_bank=1024, ranks_per_channel=2)
        mapper = AddressMapper(config)
        decoded = mapper.decode(mapper.address_for_row(row, bank_index=bank_index))
        assert decoded.row == row


class TestRATProperties:
    @settings(max_examples=60, deadline=None)
    @given(rows=st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=100))
    def test_capacity_never_exceeded_and_latest_present(self, rows):
        rat = RecentAggressorTable(num_entries=8, seed=1)
        for row in rows:
            rat.allocate(row, 0)
            assert rat.occupancy <= 8
            assert rat.contains(row)


class TestCoMeTNeverUnderestimates:
    @settings(max_examples=30, deadline=None)
    @given(
        stream=st.lists(st.integers(min_value=1, max_value=120), min_size=1, max_size=300)
    )
    def test_estimate_covers_count_since_last_trigger(self, stream):
        """CoMeT's estimate of a row is never below the row's true activation
        count since CoMeT last preventively refreshed that row's victims —
        the never-underestimate property Section 5's security argument uses.
        """
        config = small_test_config(rows_per_bank=256, refresh_window_scale=1.0)
        controller = FakeController(dram_config=config)
        comet_config = CoMeTConfig(nrh=40, num_hashes=2, counters_per_hash=16)
        comet = CoMeT(nrh=40, config=comet_config)
        comet.attach(controller)

        since_trigger = Counter()
        for cycle, row in enumerate(stream):
            address = make_address(config, row=row)
            before = len(controller.preventive_refreshes)
            comet.on_activation(cycle, address, is_preventive=False)
            since_trigger[row] += 1
            if len(controller.preventive_refreshes) > before:
                since_trigger[row] = 0
        for row, count in since_trigger.items():
            estimate = comet.estimate((0, 0, 0, 0), row)
            assert estimate >= count

    @settings(max_examples=30, deadline=None)
    @given(
        stream=st.lists(st.integers(min_value=1, max_value=60), min_size=1, max_size=400)
    )
    def test_no_row_exceeds_npr_without_refresh(self, stream):
        """No row accumulates NPR activations (since its last preventive
        refresh / reset) without CoMeT refreshing its victims."""
        config = small_test_config(rows_per_bank=128, refresh_window_scale=1.0)
        controller = FakeController(dram_config=config)
        comet_config = CoMeTConfig(nrh=40, num_hashes=2, counters_per_hash=16)
        comet = CoMeT(nrh=40, config=comet_config)
        comet.attach(controller)
        npr = comet_config.npr

        since_refresh = Counter()

        for cycle, row in enumerate(stream):
            address = make_address(config, row=row)
            before = len(controller.preventive_refreshes)
            comet.on_activation(cycle, address, is_preventive=False)
            since_refresh[row] += 1
            if len(controller.preventive_refreshes) > before:
                # CoMeT refreshed this row's victims: its slate is clean.
                since_refresh[row] = 0
            assert since_refresh[row] <= npr, (
                f"row {row} reached {since_refresh[row]} activations without a refresh"
            )
