"""Tests for the per-bank state machine and timing bookkeeping."""

import pytest

from repro.dram.bank import Bank, BankState, TimingViolation
from repro.dram.config import DRAMTiming


@pytest.fixture
def timing():
    return DRAMTiming()


@pytest.fixture
def bank(timing):
    return Bank(timing, rows=1024, bank_key=(0, 0, 0, 0))


class TestActivate:
    def test_activate_opens_row(self, bank):
        bank.activate(0, 17)
        assert bank.state is BankState.OPEN
        assert bank.open_row == 17
        assert bank.stats.activations == 1
        assert bank.activation_count(17) == 1

    def test_activate_respects_trc(self, bank, timing):
        bank.activate(0, 1)
        bank.precharge(timing.tRAS)
        # tRC not yet elapsed.
        with pytest.raises(TimingViolation):
            bank.activate(timing.tRAS + 1, 2)
        bank.activate(timing.tRC, 2)
        assert bank.open_row == 2

    def test_activate_while_open_rejected(self, bank):
        bank.activate(0, 1)
        with pytest.raises(TimingViolation):
            bank.activate(1000, 2)

    def test_activate_out_of_range_row(self, bank):
        with pytest.raises(ValueError):
            bank.activate(0, 4096)

    def test_preventive_flag_counts_separately(self, bank, timing):
        bank.activate(0, 1, preventive=True)
        assert bank.stats.preventive_activations == 1
        assert bank.stats.activations == 1


class TestPrecharge:
    def test_precharge_before_tras_rejected(self, bank, timing):
        bank.activate(0, 1)
        with pytest.raises(TimingViolation):
            bank.precharge(timing.tRAS - 1)

    def test_precharge_closes_row(self, bank, timing):
        bank.activate(0, 1)
        bank.precharge(timing.tRAS)
        assert bank.state is BankState.CLOSED
        assert bank.open_row is None

    def test_precharge_closed_bank_rejected(self, bank):
        with pytest.raises(TimingViolation):
            bank.precharge(100)

    def test_act_after_pre_requires_trp(self, bank, timing):
        bank.activate(0, 1)
        bank.precharge(timing.tRAS)
        with pytest.raises(TimingViolation):
            bank.activate(timing.tRAS + timing.tRP - 1, 2)


class TestColumnCommands:
    def test_read_requires_trcd(self, bank, timing):
        bank.activate(0, 1)
        with pytest.raises(TimingViolation):
            bank.read(timing.tRCD - 1, 1)
        done = bank.read(timing.tRCD, 1)
        assert done == timing.tRCD + timing.tCL + timing.tBURST
        assert bank.stats.reads == 1

    def test_read_wrong_row_rejected(self, bank, timing):
        bank.activate(0, 1)
        with pytest.raises(TimingViolation):
            bank.read(timing.tRCD, 2)

    def test_read_closed_bank_rejected(self, bank, timing):
        with pytest.raises(TimingViolation):
            bank.read(timing.tRCD, 1)

    def test_write_pushes_precharge_out(self, bank, timing):
        bank.activate(0, 1)
        data_end = bank.write(timing.tRCD, 1)
        assert data_end == timing.tRCD + timing.tCWL + timing.tBURST
        assert bank.next_pre >= data_end + timing.tWR

    def test_read_pushes_precharge_by_trtp(self, bank, timing):
        bank.activate(0, 1)
        issue = timing.tRAS + 10
        bank.read(issue, 1)
        assert bank.next_pre >= issue + timing.tRTP

    def test_column_access_counter(self, bank, timing):
        bank.activate(0, 1)
        assert bank.open_row_column_accesses == 0
        bank.read(timing.tRCD, 1)
        bank.read(timing.tRCD + timing.tCCD_L, 1)
        assert bank.open_row_column_accesses == 2


class TestRefreshBlock:
    def test_refresh_block_delays_activation(self, bank, timing):
        bank.refresh_block(0, 500)
        with pytest.raises(TimingViolation):
            bank.activate(499, 1)
        bank.activate(500, 1)

    def test_refresh_block_requires_closed_bank(self, bank):
        bank.activate(0, 1)
        with pytest.raises(TimingViolation):
            bank.refresh_block(10, 100)


class TestAccounting:
    def test_activation_counts_accumulate(self, bank, timing):
        cycle = 0
        for _ in range(5):
            bank.activate(cycle, 9)
            bank.precharge(cycle + timing.tRAS)
            cycle += timing.tRC
        assert bank.activation_count(9) == 5
        assert bank.activation_count(10) == 0

    def test_is_row_hit(self, bank):
        bank.activate(0, 3)
        assert bank.is_row_hit(3)
        assert not bank.is_row_hit(4)

    def test_is_closed(self, bank, timing):
        assert bank.is_closed()
        bank.activate(0, 1)
        assert not bank.is_closed()
