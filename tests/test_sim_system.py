"""Integration tests: full system simulations (cores + controller + DRAM + mitigation)."""

import pytest

from repro.cpu.trace import Trace
from repro.sim.runner import (
    build_mitigation,
    compare_single_core,
    default_experiment_config,
    normalized_ipc,
    run_multi_core,
    run_single_core,
)
from repro.sim.system import System, SystemConfig
from repro.workloads.attacks import traditional_rowhammer_attack
from repro.workloads.suite import build_multicore_traces, build_trace


@pytest.fixture(scope="module")
def dram_config():
    return default_experiment_config()


@pytest.fixture(scope="module")
def benign_trace(dram_config):
    return build_trace("450.soplex", num_requests=2500, dram_config=dram_config)


@pytest.fixture(scope="module")
def baseline_result(benign_trace, dram_config):
    return run_single_core(benign_trace, "none", nrh=1000, dram_config=dram_config)


class TestBaselineRun:
    def test_completes_and_reports(self, baseline_result, benign_trace):
        assert baseline_result.ipc > 0
        assert baseline_result.cycles > 0
        assert baseline_result.read_requests > 0
        assert baseline_result.per_core_instructions[0] == benign_trace.total_instructions

    def test_all_reads_served(self, baseline_result, benign_trace):
        stats = benign_trace.statistics()
        assert baseline_result.dram_stats["reads"] == stats.num_reads
        assert baseline_result.dram_stats["writes"] == stats.num_writes

    def test_periodic_refreshes_occur(self, baseline_result, dram_config):
        expected = baseline_result.cycles // dram_config.tREFI
        assert baseline_result.dram_stats["refreshes"] >= max(0, expected - 4)

    def test_summary_keys(self, baseline_result):
        summary = baseline_result.summary()
        assert "ipc" in summary and "energy_nj" in summary

    def test_energy_positive(self, baseline_result):
        assert baseline_result.energy.total_nj > 0


class TestMitigationRuns:
    @pytest.mark.parametrize("mitigation", ["comet", "graphene", "hydra", "para", "rega", "blockhammer"])
    def test_mitigated_run_completes_securely(self, benign_trace, dram_config, baseline_result, mitigation):
        result = run_single_core(benign_trace, mitigation, nrh=250, dram_config=dram_config)
        assert result.security_ok, f"{mitigation} violated the RowHammer invariant"
        assert result.per_core_instructions == baseline_result.per_core_instructions
        assert 0 < result.ipc <= baseline_result.ipc * 1.02

    def test_comet_overhead_small_for_benign_workload_at_1k(self, benign_trace, dram_config, baseline_result):
        result = run_single_core(benign_trace, "comet", nrh=1000, dram_config=dram_config)
        assert normalized_ipc(result, baseline_result) > 0.97

    def test_comet_overhead_grows_at_lower_threshold(self, benign_trace, dram_config, baseline_result):
        at_1k = run_single_core(benign_trace, "comet", nrh=1000, dram_config=dram_config)
        at_125 = run_single_core(benign_trace, "comet", nrh=125, dram_config=dram_config)
        assert normalized_ipc(at_125, baseline_result) <= normalized_ipc(at_1k, baseline_result) + 1e-6
        assert at_125.preventive_refreshes >= at_1k.preventive_refreshes

    def test_para_more_expensive_than_comet_at_low_threshold(self, benign_trace, dram_config):
        comet = run_single_core(benign_trace, "comet", nrh=125, dram_config=dram_config)
        para = run_single_core(benign_trace, "para", nrh=125, dram_config=dram_config)
        assert para.ipc < comet.ipc
        assert para.preventive_refreshes > comet.preventive_refreshes

    def test_hydra_generates_mitigation_traffic(self, benign_trace, dram_config):
        result = run_single_core(benign_trace, "hydra", nrh=125, dram_config=dram_config)
        assert result.mitigation_stats["mitigation_memory_requests"] >= 0
        # Hydra's overhead shows up as higher read latency than CoMeT's.
        comet = run_single_core(benign_trace, "comet", nrh=125, dram_config=dram_config)
        assert result.average_read_latency >= comet.average_read_latency * 0.95

    def test_compare_single_core_includes_baseline(self, benign_trace, dram_config):
        results = compare_single_core(benign_trace, ["comet"], nrh=500, dram_config=dram_config)
        assert set(results) == {"none", "comet"}

    def test_build_mitigation_rejects_unknown(self):
        with pytest.raises(ValueError):
            build_mitigation("trr", nrh=1000)

    def test_build_mitigation_with_overrides(self):
        from repro.core.config import CoMeTConfig

        comet = build_mitigation("comet", nrh=1000, config=CoMeTConfig(nrh=1000, rat_entries=64))
        assert comet.config.rat_entries == 64


class TestAttackRuns:
    def test_unprotected_attack_violates_invariant(self, dram_config):
        attack = traditional_rowhammer_attack(
            num_requests=4000, dram_config=dram_config, aggressor_rows_per_bank=2
        )
        result = run_single_core(attack, "none", nrh=125, dram_config=dram_config)
        assert not result.security_ok
        assert result.max_disturbance >= 125

    @pytest.mark.parametrize("mitigation", ["comet", "graphene", "para"])
    def test_mitigations_stop_traditional_attack(self, dram_config, mitigation):
        attack = traditional_rowhammer_attack(
            num_requests=4000, dram_config=dram_config, aggressor_rows_per_bank=2
        )
        result = run_single_core(attack, mitigation, nrh=125, dram_config=dram_config)
        assert result.security_ok
        assert result.preventive_refreshes > 0

    def test_comet_under_attack_triggers_refreshes(self, dram_config):
        attack = traditional_rowhammer_attack(num_requests=3000, dram_config=dram_config)
        result = run_single_core(attack, "comet", nrh=125, dram_config=dram_config)
        assert result.preventive_refreshes > 0
        assert result.max_disturbance < 125


class TestMultiCore:
    def test_multicore_run(self, dram_config):
        traces = build_multicore_traces(
            "462.libquantum", num_cores=4, num_requests=800, dram_config=dram_config
        )
        result = run_multi_core(traces, "comet", nrh=250, dram_config=dram_config)
        assert len(result.per_core_ipc) == 4
        assert all(ipc > 0 for ipc in result.per_core_ipc)
        assert result.security_ok

    def test_shared_memory_slows_cores_down(self, dram_config):
        single = run_single_core(
            build_trace("433.milc", num_requests=800, dram_config=dram_config),
            "none",
            nrh=1000,
            dram_config=dram_config,
        )
        traces = build_multicore_traces(
            "433.milc", num_cores=4, num_requests=800, dram_config=dram_config
        )
        shared = run_multi_core(traces, "none", nrh=1000, dram_config=dram_config)
        assert min(shared.per_core_ipc) <= single.ipc + 1e-9


class TestSystemConfigValidation:
    def test_requires_at_least_one_trace(self, dram_config):
        with pytest.raises(ValueError):
            System([], config=SystemConfig(dram=dram_config))

    def test_llc_mode_runs(self, dram_config):
        trace = Trace.from_tuples([(10, 0x1000 * i) for i in range(200)], name="llc")
        config = SystemConfig(dram=dram_config, use_llc=True, verify_security=False)
        result = System([trace], config=config).run()
        assert result.ipc > 0
