"""Tests for the analysis tools: security verifier, tracker FPR, reporting."""

import pytest

from repro.analysis.false_positive import (
    blockhammer_tracker,
    comet_tracker,
    false_positive_rate_curve,
    measure_false_positive_rate,
    uniform_activation_counts,
)
from repro.analysis.reporting import format_report, format_table, render_series
from repro.analysis.security import SecurityVerifier
from repro.dram.commands import Command, CommandKind
from repro.dram.dram_system import DRAMSystem


class TestSecurityVerifier:
    def make(self, config, nrh=10):
        dram = DRAMSystem(config)
        verifier = SecurityVerifier(dram, nrh=nrh)
        return dram, verifier

    def hammer(self, dram, row, times, bank=0, bankgroup=0, start_cycle=0):
        timing = dram.config.timing
        cycle = start_cycle
        for _ in range(times):
            cycle = dram.earliest_issue_cycle(
                Command(CommandKind.ACT, bankgroup=bankgroup, bank=bank, row=row), cycle
            )
            dram.issue(
                Command(CommandKind.ACT, bankgroup=bankgroup, bank=bank, row=row), cycle
            )
            dram.issue(Command(CommandKind.PRE, bankgroup=bankgroup, bank=bank), cycle + timing.tRAS)
            cycle += timing.tRC
        return cycle

    def test_no_violation_below_threshold(self, tiny_dram_config):
        dram, verifier = self.make(tiny_dram_config, nrh=10)
        self.hammer(dram, row=5, times=9)
        assert verifier.is_secure
        assert verifier.max_disturbance == 9

    def test_violation_at_threshold(self, tiny_dram_config):
        dram, verifier = self.make(tiny_dram_config, nrh=10)
        self.hammer(dram, row=5, times=10)
        assert not verifier.is_secure
        assert verifier.violations[0].disturbance == 10
        assert verifier.violations[0].victim[4] in (4, 6)

    def test_both_neighbours_accumulate(self, tiny_dram_config):
        dram, verifier = self.make(tiny_dram_config, nrh=100)
        self.hammer(dram, row=5, times=3)
        from repro.dram.address import DRAMAddress

        assert verifier.disturbance_of(DRAMAddress(0, 0, 0, 0, 4, 0)) == 3
        assert verifier.disturbance_of(DRAMAddress(0, 0, 0, 0, 6, 0)) == 3

    def test_double_sided_accumulation(self, tiny_dram_config):
        """Activations of both neighbours add up on the shared victim."""
        dram, verifier = self.make(tiny_dram_config, nrh=12)
        self.hammer(dram, row=4, times=6)
        self.hammer(dram, row=6, times=6)
        assert not verifier.is_secure  # row 5 accumulated 12

    def test_preventive_refresh_resets_disturbance(self, tiny_dram_config):
        dram, verifier = self.make(tiny_dram_config, nrh=10)
        cycle = self.hammer(dram, row=5, times=5)
        timing = tiny_dram_config.timing
        # Preventively refresh victim row 6 (ACT with the preventive flag).
        dram.issue(
            Command(CommandKind.ACT, bankgroup=0, bank=0, row=6, is_preventive=True), cycle
        )
        dram.issue(Command(CommandKind.PRE, bankgroup=0, bank=0), cycle + timing.tRAS)
        from repro.dram.address import DRAMAddress

        assert verifier.disturbance_of(DRAMAddress(0, 0, 0, 0, 6, 0)) <= 1
        # Row 4 was not refreshed and keeps its disturbance.
        assert verifier.disturbance_of(DRAMAddress(0, 0, 0, 0, 4, 0)) == 5

    def test_rank_refresh_clears_covered_rows(self, tiny_dram_config):
        dram, verifier = self.make(tiny_dram_config, nrh=50)
        cycle = self.hammer(dram, row=1, times=5)
        dram.issue(Command(CommandKind.REF, rank=0), cycle)
        from repro.dram.address import DRAMAddress

        covered_rows = tiny_dram_config.rows_per_refresh
        if covered_rows > 2:
            assert verifier.disturbance_of(DRAMAddress(0, 0, 0, 0, 0, 0)) == 0
            assert verifier.disturbance_of(DRAMAddress(0, 0, 0, 0, 2, 0)) == 0

    def test_report(self, tiny_dram_config):
        dram, verifier = self.make(tiny_dram_config, nrh=10)
        self.hammer(dram, row=5, times=3)
        report = verifier.report()
        assert report["is_secure"] is True
        assert report["max_disturbance"] == 3

    def test_worst_victims_sorted(self, tiny_dram_config):
        dram, verifier = self.make(tiny_dram_config, nrh=100)
        self.hammer(dram, row=5, times=4)
        self.hammer(dram, row=50, times=2)
        worst = verifier.worst_victims(top=2)
        assert worst[0][1] >= worst[1][1]

    def test_invalid_nrh(self, tiny_dram_config):
        dram = DRAMSystem(tiny_dram_config)
        with pytest.raises(ValueError):
            SecurityVerifier(dram, nrh=0)


class TestFalsePositiveAnalysis:
    def test_uniform_counts_sum(self):
        counts = uniform_activation_counts(100, 10_000)
        assert sum(counts.values()) == 10_000
        assert len(counts) == 100

    def test_few_rows_no_false_positives(self):
        """With few unique rows, both trackers have essentially exact counts."""
        counts = uniform_activation_counts(10, 10_000, seed=1)
        comet = comet_tracker(nrh=125, seed=1)
        assert measure_false_positive_rate(comet, counts, threshold=125, seed=1) == 0.0

    def test_many_rows_saturate_small_trackers(self):
        """When the activation budget dwarfs the counter budget, counters
        saturate past the flagging threshold and the FPR rises sharply."""
        from repro.core.config import CoMeTConfig

        counts = uniform_activation_counts(5_000, 10_000, seed=2)
        small_config = CoMeTConfig(nrh=124, num_hashes=4, counters_per_hash=64, hash_seed=2)
        comet = comet_tracker(nrh=31, config=small_config, seed=2)
        bh = blockhammer_tracker(nrh=31, num_counters=256, seed=2)
        assert measure_false_positive_rate(comet, counts, threshold=31, seed=2) > 0.3
        assert measure_false_positive_rate(bh, counts, threshold=31, seed=2) > 0.3

    def test_curve_shape_matches_figure17(self):
        """CoMeT's tracker has a lower (or equal) FPR than BlockHammer's in the
        few-hundred-unique-rows region (the claim of Section 8.3 / Figure 17).

        The flagging threshold is NPR = 31 (NRH=125 with k=3), the threshold at
        which either tracker would trigger a preventive action.
        """
        unique_rows = [100, 250, 2500]
        curve = false_positive_rate_curve(unique_rows, total_activations=10_000, threshold=31, seed=3)
        comet = curve["CoMeT"]
        blockhammer = curve["BlockHammer"]
        assert comet[0] <= blockhammer[0] + 1e-9
        assert comet[1] <= blockhammer[1] + 1e-9
        assert comet[-1] >= comet[0]

    def test_curve_has_entry_per_tracker(self):
        curve = false_positive_rate_curve([50], total_activations=1000, threshold=50)
        assert set(curve) == {"CoMeT", "BlockHammer"}


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_render_series(self):
        text = render_series({"comet": [1.0, 0.9]}, x_values=[1000, 125], x_label="nrh")
        assert "nrh" in text
        assert "comet" in text
        assert "125" in text

    def test_format_report_sections(self):
        text = format_report({"summary": {"ipc": 1.0}, "notes": "all good"})
        assert "== summary ==" in text
        assert "ipc: 1" in text
        assert "all good" in text
