"""Tests for physical address <-> DRAM coordinate mapping."""

import pytest

from repro.dram.address import AddressMapper, DRAMAddress
from repro.dram.config import DRAMConfig


@pytest.fixture
def full_mapper():
    return AddressMapper(DRAMConfig())


class TestDecodeEncode:
    def test_roundtrip_sequential_addresses(self, mapper):
        line = mapper.config.organization.cacheline_bytes
        for address in range(0, 200 * line, line):
            decoded = mapper.decode(address)
            assert mapper.encode(decoded) == address

    def test_roundtrip_full_config(self, full_mapper):
        line = 64
        for address in range(0, 512 * line, 7 * line):
            decoded = full_mapper.decode(address)
            assert full_mapper.encode(decoded) == address

    def test_decode_fields_in_range(self, mapper):
        org = mapper.config.organization
        for address in range(0, 100_000, 4096 + 64):
            decoded = mapper.decode(address)
            assert 0 <= decoded.channel < org.channels
            assert 0 <= decoded.rank < org.ranks_per_channel
            assert 0 <= decoded.bankgroup < org.bankgroups_per_rank
            assert 0 <= decoded.bank < org.banks_per_bankgroup
            assert 0 <= decoded.row < org.rows_per_bank
            assert 0 <= decoded.column < org.columns_per_row

    def test_negative_address_rejected(self, mapper):
        with pytest.raises(ValueError):
            mapper.decode(-1)

    def test_consecutive_cachelines_spread_across_banks(self, full_mapper):
        """The mapping should interleave consecutive lines over banks (parallelism)."""
        line = 64
        banks = {full_mapper.decode(i * line).bank_key for i in range(16)}
        assert len(banks) > 4

    def test_same_row_lines_share_row(self, mapper):
        """Addresses differing only in column bits must decode to the same row."""
        base = mapper.address_for_row(10, bank_index=1, column=0)
        other = mapper.address_for_row(10, bank_index=1, column=8)
        a, b = mapper.decode(base), mapper.decode(other)
        assert a.row == b.row
        assert a.bank_key == b.bank_key
        assert a.column != b.column


class TestAddressForRow:
    def test_targets_requested_row_and_bank(self, mapper):
        org = mapper.config.organization
        for bank_index in mapper.all_bank_indices():
            address = mapper.address_for_row(42, bank_index=bank_index)
            decoded = mapper.decode(address)
            assert decoded.row == 42
            flat = (
                decoded.rank * org.banks_per_rank
                + decoded.bankgroup * org.banks_per_bankgroup
                + decoded.bank
            )
            assert flat == bank_index

    def test_row_wraps_around(self, mapper):
        rows = mapper.config.organization.rows_per_bank
        address = mapper.address_for_row(rows + 5, bank_index=0)
        assert mapper.decode(address).row == 5

    def test_all_bank_indices_count(self, mapper):
        org = mapper.config.organization
        assert len(mapper.all_bank_indices()) == org.ranks_per_channel * org.banks_per_rank

    def test_iter_rows(self, mapper):
        addresses = list(mapper.iter_rows(bank_index=0, start=10, count=5))
        rows = [mapper.decode(a).row for a in addresses]
        assert rows == [10, 11, 12, 13, 14]


class TestNeighbors:
    def test_middle_row_has_two_victims(self, mapper):
        address = mapper.decode(mapper.address_for_row(100, bank_index=0))
        victims = mapper.neighbors(address)
        assert {v.row for v in victims} == {99, 101}
        assert all(v.bank_key == address.bank_key for v in victims)

    def test_edge_rows_have_one_victim(self, mapper):
        rows = mapper.config.organization.rows_per_bank
        first = mapper.decode(mapper.address_for_row(0, bank_index=0))
        last = mapper.decode(mapper.address_for_row(rows - 1, bank_index=0))
        assert {v.row for v in mapper.neighbors(first)} == {1}
        assert {v.row for v in mapper.neighbors(last)} == {rows - 2}

    def test_blast_radius_two(self, mapper):
        address = mapper.decode(mapper.address_for_row(100, bank_index=0))
        victims = mapper.neighbors(address, blast_radius=2)
        assert {v.row for v in victims} == {98, 99, 101, 102}


class TestDRAMAddress:
    def test_bank_key_and_row_key(self):
        address = DRAMAddress(channel=0, rank=1, bankgroup=2, bank=3, row=7, column=0)
        assert address.bank_key == (0, 1, 2, 3)
        assert address.row_key == (0, 1, 2, 3, 7)

    def test_ordering(self):
        a = DRAMAddress(0, 0, 0, 0, 5, 0)
        b = DRAMAddress(0, 0, 0, 0, 6, 0)
        assert a < b
