"""Tests for the read-only HTTP JSON API over a result store."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaign import CampaignRunner, ResultStore, make_server
from repro.experiment.spec import CampaignSpec

CAMPAIGN = CampaignSpec(
    name="servetest",
    workloads=("synth_uniform",),
    mitigations=("para",),
    nrhs=(250,),
    num_requests=200,
)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    store = ResultStore(tmp_path_factory.mktemp("serve") / "store")
    status = CampaignRunner(CAMPAIGN, store=store).run()
    assert status.finished  # 1 para cell + 1 baseline
    return store


@pytest.fixture(scope="module")
def base_url(store):
    server = make_server(store, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


def get_json(url, expect_status=200):
    try:
        with urllib.request.urlopen(url) as response:
            assert response.status == expect_status
            return json.loads(response.read())
    except urllib.error.HTTPError as error:
        assert error.code == expect_status, error.read()
        return json.loads(error.read())


class TestEndpoints:
    def test_health(self, base_url):
        body = get_json(f"{base_url}/health")
        assert body["status"] == "ok"
        assert body["records"] == 2
        assert body["campaigns"] == 1

    def test_record_by_hash(self, base_url, store):
        spec, _ = CAMPAIGN.cells()[0]
        spec_hash = spec.content_hash()
        body = get_json(f"{base_url}/records/{spec_hash}")
        assert body["spec_hash"] == spec_hash
        assert body["record"]["spec"] == spec.to_dict()
        assert body["record"]["result"]["fields"]["per_core_ipc"]

    def test_query_all_and_filtered(self, base_url):
        body = get_json(f"{base_url}/query")
        assert body["count"] == 2
        body = get_json(f"{base_url}/query?mitigation=para&workload=synth_uniform")
        assert body["count"] == 1
        assert body["results"][0]["nrh"] == 250
        body = get_json(f"{base_url}/query?mitigation=para&nrh=9999")
        assert body["count"] == 0
        body = get_json(f"{base_url}/query?limit=1")
        assert body["count"] == 1

    def test_query_by_campaign_and_secure(self, base_url):
        campaign_id = CAMPAIGN.campaign_id()
        body = get_json(f"{base_url}/query?campaign={campaign_id}")
        assert body["count"] == 2
        assert all(row["campaign"] == campaign_id for row in body["results"])
        body = get_json(f"{base_url}/query?mitigation=para&secure=true")
        assert body["count"] == 1

    def test_campaigns_listing_and_detail(self, base_url):
        campaign_id = CAMPAIGN.campaign_id()
        body = get_json(f"{base_url}/campaigns")
        assert body["campaigns"] == [campaign_id]
        body = get_json(f"{base_url}/campaigns/{campaign_id}")
        assert body["name"] == "servetest"
        assert body["completed"] == body["total"] == 2
        assert body["finished"] is True
        assert body["state"]["campaign"]["name"] == "servetest"

    def test_campaign_id_prefix_resolves(self, base_url):
        prefix = CAMPAIGN.campaign_id()[:12]
        body = get_json(f"{base_url}/campaigns/{prefix}")
        assert body["campaign_id"] == CAMPAIGN.campaign_id()


class TestErrors:
    def test_unknown_endpoint_404(self, base_url):
        body = get_json(f"{base_url}/nope", expect_status=404)
        assert "no such endpoint" in body["error"]

    def test_malformed_hash_400(self, base_url):
        body = get_json(f"{base_url}/records/nothex", expect_status=400)
        assert "64 lowercase hex" in body["error"]

    def test_missing_record_404(self, base_url):
        body = get_json(f"{base_url}/records/{'0' * 64}", expect_status=404)
        assert "no record" in body["error"]

    def test_missing_campaign_404(self, base_url):
        body = get_json(f"{base_url}/campaigns/ffffffffffff", expect_status=404)
        assert "no campaign" in body["error"]

    def test_bad_query_int_400(self, base_url):
        body = get_json(f"{base_url}/query?nrh=abc", expect_status=400)
        assert "integer" in body["error"]
