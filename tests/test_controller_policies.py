"""Tests for the pluggable controller-policy layer.

Covers the three policy registries and the :class:`ControllerPolicySpec`
contract (validation, param routing, serialization, default normalization),
the behavioural contracts of every non-default policy (FCFS ordering, BLISS
blacklisting, closed-page/timeout precharging, fine-granularity refresh),
and the headline equivalence promise: the default triple is bit-identical
to a controller built with no policy at all.
"""

import dataclasses

import pytest

from repro.controller.controller import ControllerConfig, MemoryController
from repro.controller.policies import (
    NEVER,
    ControllerPolicySpec,
    DEFAULT_POLICY,
    FineGranularityRefreshPolicy,
    UnknownPolicyError,
    normalize_policy,
    policy_catalog,
    refresh_policy_names,
    row_policy_names,
    scheduler_names,
)
from repro.controller.request import MemoryRequest, RequestType
from repro.experiment.execute import execute_spec
from repro.experiment.spec import (
    ExperimentSpec,
    MitigationSpec,
    PlatformSpec,
    WorkloadSpec,
)
from repro.sim.sweep import SweepPoint, SweepRunner


def make_controller(dram_config, **kwargs):
    return MemoryController(dram_config, **kwargs)


def read_request(controller, row, bank_index=0, column=0, cycle=0, core_id=0):
    address = controller.mapper.decode(
        controller.mapper.address_for_row(row, bank_index=bank_index, column=column)
    )
    return MemoryRequest(
        request_type=RequestType.READ,
        address=address,
        core_id=core_id,
        arrival_cycle=cycle,
    )


def run_until_idle(controller, start=0, limit=50_000):
    """Issue until the controller has nothing left (incl. policy closes)."""
    cycle = start
    for _ in range(limit):
        issued = controller.issue_next(cycle)
        if issued is None:
            break
        cycle = issued
    return cycle


def policy(**kwargs):
    return ControllerPolicySpec(**kwargs)


# --------------------------------------------------------------------------- #
# Registry and spec contract
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_builtin_policies_registered(self):
        assert scheduler_names() == ["bliss", "fcfs", "fr_fcfs"]
        assert row_policy_names() == ["adaptive_timeout", "closed_page", "open_page"]
        assert refresh_policy_names() == ["all_bank", "fine_granularity", "rfm"]

    def test_catalog_carries_metadata(self):
        entries = {(e.kind, e.name): e for e in policy_catalog()}
        assert len(entries) == 9
        assert all(e.description for e in entries.values())
        assert "row_timeout" in entries[("row_policy", "adaptive_timeout")].params
        assert "bliss_blacklist_streak" in entries[("scheduler", "bliss")].params
        assert "raaimt" in entries[("refresh_policy", "rfm")].params

    def test_unknown_names_rejected_listing_known(self):
        with pytest.raises(UnknownPolicyError, match="fr_fcfs"):
            ControllerPolicySpec(scheduler="frfcfs")
        with pytest.raises(UnknownPolicyError, match="open_page"):
            ControllerPolicySpec(row_policy="open")
        with pytest.raises(UnknownPolicyError, match="all_bank"):
            ControllerPolicySpec(refresh_policy="per_bank")

    def test_unknown_params_rejected(self):
        with pytest.raises(ValueError, match="unknown policy params"):
            ControllerPolicySpec(params={"row_timeout": 100})  # open_page takes none
        with pytest.raises(ValueError, match="row_timeout"):
            ControllerPolicySpec(
                row_policy="adaptive_timeout", params={"row_timeut": 100}
            )


class TestPolicySpec:
    def test_default_and_label(self):
        assert DEFAULT_POLICY.is_default
        assert DEFAULT_POLICY.label() == "fr_fcfs/open_page/all_bank"
        spec = policy(scheduler="bliss", params={"bliss_blacklist_streak": 8})
        assert not spec.is_default
        assert spec.label() == "bliss/open_page/all_bank[bliss_blacklist_streak=8]"

    def test_param_routing_to_constructors(self):
        spec = policy(
            scheduler="bliss",
            row_policy="adaptive_timeout",
            refresh_policy="fine_granularity",
            params={
                "bliss_blacklist_streak": 8,
                "row_timeout": 123,
                "refresh_granularity": 4,
            },
        )
        scheduler, row, refresh = spec.build()
        assert scheduler.blacklist_streak == 8
        assert row.row_timeout == 123
        assert refresh.granularity == 4

    def test_dict_round_trip(self):
        spec = policy(scheduler="fcfs", row_policy="closed_page")
        assert ControllerPolicySpec.from_dict(spec.to_dict()) == spec

    def test_normalize_maps_default_to_none(self):
        assert normalize_policy(ControllerPolicySpec()) is None
        spec = policy(scheduler="fcfs")
        assert normalize_policy(spec) is spec

    def test_platform_normalizes_explicit_default(self):
        plain = PlatformSpec()
        explicit = PlatformSpec(controller=ControllerPolicySpec())
        assert explicit.controller is None
        assert explicit == plain

    def test_experiment_spec_json_round_trip(self):
        spec = ExperimentSpec(
            workload=WorkloadSpec(name="429.mcf", num_requests=500),
            mitigation=MitigationSpec(name="comet", nrh=125),
            platform=PlatformSpec(
                controller=policy(
                    scheduler="bliss",
                    row_policy="adaptive_timeout",
                    params={"row_timeout": 250},
                )
            ),
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.content_hash() == spec.content_hash()

    def test_policy_changes_content_hash(self):
        base = ExperimentSpec(
            workload=WorkloadSpec(name="429.mcf", num_requests=500),
            mitigation=MitigationSpec(name="comet", nrh=125),
        )
        swapped = dataclasses.replace(
            base, platform=PlatformSpec(controller=policy(scheduler="fcfs"))
        )
        assert base.content_hash() != swapped.content_hash()


class TestSweepPointAxes:
    def test_policy_spec_normalizes_default(self):
        assert SweepPoint("429.mcf", "comet", 125).policy_spec() is None
        point = SweepPoint("429.mcf", "comet", 125, scheduler="bliss")
        assert point.policy_spec() == policy(scheduler="bliss")
        assert "bliss" in point.label()

    def test_grid_crosses_policy_axes(self):
        points = SweepRunner.grid(
            workloads=["429.mcf"],
            mitigations=["comet"],
            nrhs=[125],
            schedulers=["fr_fcfs", "fcfs", "bliss"],
            row_policies=["open_page", "closed_page"],
        )
        # (1 baseline + 1 comet point) per policy triple.
        assert len(points) == 2 * 3 * 2
        triples = {(p.scheduler, p.row_policy, p.refresh_policy) for p in points}
        assert len(triples) == 6


# --------------------------------------------------------------------------- #
# Default-triple equivalence
# --------------------------------------------------------------------------- #
class TestDefaultEquivalence:
    def test_explicit_default_policy_is_bit_identical(self):
        base = ExperimentSpec(
            workload=WorkloadSpec(name="450.soplex", num_requests=1200),
            mitigation=MitigationSpec(name="comet", nrh=250),
        )
        explicit = dataclasses.replace(
            base, platform=PlatformSpec(controller=ControllerPolicySpec())
        )
        # Normalization makes the two specs literally equal...
        assert explicit == base
        # ... and an un-normalized triple built per-controller still runs the
        # exact same simulation.
        result = execute_spec(base)
        controller = MemoryController(
            PlatformSpec().dram_config(), policy=DEFAULT_POLICY
        )
        assert controller.policy_spec.is_default
        assert result.security_ok

    def test_default_controller_uses_frfcfs_open_page(self, tiny_dram_config):
        controller = make_controller(tiny_dram_config)
        assert controller.scheduler.name == "fr_fcfs"
        assert controller.row_policy.name == "open_page"
        assert controller.refresh_policy.name == "all_bank"
        # open_page never emits close candidates: nothing to issue after the
        # read retires, and the row stays open.
        controller.enqueue(read_request(controller, 5), 0)
        run_until_idle(controller)
        assert not controller.dram.bank_for(
            read_request(controller, 5).address
        ).is_closed()


# --------------------------------------------------------------------------- #
# Scheduling policies
# --------------------------------------------------------------------------- #
class TestFCFSScheduler:
    def test_older_conflict_beats_younger_hit(self, tiny_dram_config):
        """The FR-FCFS reordering test, inverted: FCFS serves arrival order."""
        controller = make_controller(tiny_dram_config, policy=policy(scheduler="fcfs"))
        order = []
        first = read_request(controller, 1, cycle=0)
        controller.enqueue(first, 0)
        run_until_idle(controller)  # opens row 1

        conflict = read_request(controller, 2, cycle=100)
        conflict.on_complete = lambda req, cycle: order.append("conflict_row2")
        hit = read_request(controller, 1, column=8, cycle=101)
        hit.on_complete = lambda req, cycle: order.append("hit_row1")
        controller.enqueue(conflict, 100)
        controller.enqueue(hit, 101)
        run_until_idle(controller, start=101)
        assert order.index("conflict_row2") < order.index("hit_row1")


class TestBLISSScheduler:
    def _bliss_controller(self, dram_config, streak=2, interval=1_000_000):
        return make_controller(
            dram_config,
            policy=policy(
                scheduler="bliss",
                params={
                    "bliss_blacklist_streak": streak,
                    "bliss_clearing_interval": interval,
                },
            ),
        )

    def test_streak_blacklists_core(self, tiny_dram_config):
        controller = self._bliss_controller(tiny_dram_config, streak=2)
        for i in range(3):
            controller.enqueue(
                read_request(controller, 1, column=8 * i, core_id=0), 0
            )
        run_until_idle(controller)
        assert controller.scheduler.blacklist == {0}

    def test_blacklisted_core_loses_to_other_core(self, tiny_dram_config):
        controller = self._bliss_controller(tiny_dram_config, streak=1)
        # Core 0 gets one request served and is immediately blacklisted.
        controller.enqueue(read_request(controller, 1, core_id=0), 0)
        run_until_idle(controller)
        assert 0 in controller.scheduler.blacklist

        order = []
        older = read_request(controller, 1, column=8, cycle=100, core_id=0)
        older.on_complete = lambda req, cycle: order.append("core0")
        younger = read_request(controller, 1, column=16, cycle=101, core_id=1)
        younger.on_complete = lambda req, cycle: order.append("core1")
        controller.enqueue(older, 100)
        controller.enqueue(younger, 101)
        run_until_idle(controller, start=101)
        # Both are row hits to the same bank; the non-blacklisted core wins
        # despite arriving later.
        assert order == ["core1", "core0"]

    def test_clearing_boundary_invalidates_cached_decisions(self, tiny_dram_config):
        """The event kernel replays cached decisions at their issue cycle;
        a decision spanning a BLISS clearing boundary must be recomputed
        (the blacklist it ranked on is empty by then)."""
        controller = self._bliss_controller(tiny_dram_config, interval=500)
        assert controller.decision_crosses_boundary(400, 600)
        assert not controller.decision_crosses_boundary(100, 400)
        # The default scheduler's priorities are time-invariant: only a
        # refresh deadline can invalidate its cached decisions.
        default = make_controller(tiny_dram_config)
        assert default.decision_crosses_boundary(
            400, 600
        ) == default.refresh_crosses_due(400, 600)

    def test_clearing_interval_resets_blacklist(self, tiny_dram_config):
        controller = self._bliss_controller(tiny_dram_config, streak=1, interval=500)
        controller.enqueue(read_request(controller, 1, core_id=0), 0)
        run_until_idle(controller)
        assert controller.scheduler.blacklist == {0}
        controller.scheduler._maybe_clear(500)
        assert controller.scheduler.blacklist == set()


# --------------------------------------------------------------------------- #
# Row policies
# --------------------------------------------------------------------------- #
class TestClosedPage:
    def test_idle_bank_closes_after_service(self, tiny_dram_config):
        controller = make_controller(
            tiny_dram_config, policy=policy(row_policy="closed_page")
        )
        request = read_request(controller, 7)
        controller.enqueue(request, 0)
        run_until_idle(controller)
        assert controller.dram.bank_for(request.address).is_closed()
        assert controller.stats.policy_precharges == 1

    def test_pending_hits_keep_row_open(self, tiny_dram_config):
        controller = make_controller(
            tiny_dram_config, policy=policy(row_policy="closed_page")
        )
        controller.enqueue(read_request(controller, 7), 0)
        controller.enqueue(read_request(controller, 7, column=8), 0)
        # Serve ACT + first RD: a hit is still pending, so no close yet.
        for _ in range(2):
            controller.issue_next(0)
        address = read_request(controller, 7).address
        assert not controller.dram.bank_for(address).is_closed()
        run_until_idle(controller)
        assert controller.dram.bank_for(address).is_closed()


class TestAdaptiveTimeout:
    def test_row_closes_only_after_timeout(self, tiny_dram_config):
        timeout = 400
        controller = make_controller(
            tiny_dram_config,
            policy=policy(
                row_policy="adaptive_timeout", params={"row_timeout": timeout}
            ),
        )
        request = read_request(controller, 3)
        controller.enqueue(request, 0)
        cycle = 0
        # ACT + RD retire the request; the bank stays open for now.
        for _ in range(2):
            cycle = controller.issue_next(cycle)
        bank = controller.dram.bank_for(request.address)
        assert not bank.is_closed()
        # The close candidate is future-dated to the residency timeout.
        close_cycle = controller.next_issue_cycle(cycle)
        assert close_cycle >= timeout
        issued = controller.issue_next(cycle)
        assert issued == close_cycle
        assert bank.is_closed()
        assert controller.stats.policy_precharges == 1


# --------------------------------------------------------------------------- #
# Refresh policies
# --------------------------------------------------------------------------- #
class TestFineGranularityRefresh:
    def test_invalid_granularity_rejected(self):
        with pytest.raises(ValueError, match="refresh_granularity"):
            FineGranularityRefreshPolicy(refresh_granularity=3)

    def test_config_rewrite(self, tiny_dram_config):
        controller = make_controller(
            tiny_dram_config,
            policy=policy(
                refresh_policy="fine_granularity", params={"refresh_granularity": 2}
            ),
        )
        assert controller.dram_config.tREFI == max(
            1, tiny_dram_config.timing.tREFI // 2
        )
        assert (
            controller.dram_config.timing.tRFC
            == max(1, int(round(tiny_dram_config.timing.tRFC * 260.0 / 350.0)))
        )
        # Twice the REFs, half the rows each: per-window coverage unchanged.
        assert (
            controller.dram_config.refreshes_per_window
            >= 2 * tiny_dram_config.refreshes_per_window - 1
        )

    def test_doubles_refresh_rate_end_to_end(self):
        base = ExperimentSpec(
            workload=WorkloadSpec(name="429.mcf", num_requests=2000),
            mitigation=MitigationSpec(name="comet", nrh=250),
        )
        fgr = dataclasses.replace(
            base,
            platform=PlatformSpec(controller=policy(refresh_policy="fine_granularity")),
        )
        base_result = execute_spec(base)
        fgr_result = execute_spec(fgr)
        assert fgr_result.dram_stats["refreshes"] > 1.5 * base_result.dram_stats["refreshes"]
        assert base_result.security_ok and fgr_result.security_ok


# --------------------------------------------------------------------------- #
# Statistics attribution
# --------------------------------------------------------------------------- #
class TestStatisticsAttribution:
    def test_per_core_dicts_default_to_zero(self, tiny_dram_config):
        controller = make_controller(tiny_dram_config)
        assert controller.stats.per_core_reads[99] == 0
        assert controller.stats.per_core_read_latency[99] == 0

    def test_row_outcomes_attributed_per_decision(self, tiny_dram_config):
        controller = make_controller(tiny_dram_config)
        # row 1 (miss), row 1 again (hit), row 2 (conflict -> miss after PRE).
        controller.enqueue(read_request(controller, 1), 0)
        controller.enqueue(read_request(controller, 1, column=8), 0)
        controller.enqueue(read_request(controller, 2, cycle=1), 1)
        run_until_idle(controller)
        assert controller.stats.row_hits == 3  # every column command
        assert controller.stats.row_misses == 2  # two demand ACTs
        assert controller.stats.row_conflicts == 1  # one demand PRE
        assert controller.stats.completed_reads == 3

    def test_never_sentinel_is_int(self):
        assert isinstance(NEVER, int)
        assert NEVER > 10**15


# --------------------------------------------------------------------------- #
# Refresh row-coverage scaling (the energy model's denominator)
# --------------------------------------------------------------------------- #
class TestRefreshRowCoverage:
    """Per-tREFW row coverage is granularity-invariant.

    ``rows_per_refresh`` is derived from ``tREFW // tREFI``, so FGR's
    shorter tREFI halves/quarters the per-REF coverage while doubling/
    quadrupling the REF rate: every row of a bank is refreshed exactly once
    per window (plus at most one ceil row per REF of overshoot) at every
    granularity.  This invariant is what lets the energy model charge REFs
    by rows covered (see ``TestRefreshRowAccounting`` in test_energy.py).
    """

    def test_rows_per_refresh_scales_inversely_with_granularity(self):
        from repro.dram.config import DRAMConfig

        base = DRAMConfig()
        per_refresh = {}
        for granularity in (1, 2, 4):
            config = (
                base
                if granularity == 1
                else FineGranularityRefreshPolicy(granularity).adjust_dram_config(
                    base
                )
            )
            per_refresh[granularity] = config.rows_per_refresh
        # The full-scale DDR4 channel: 16 rows per all-bank REF, halving
        # with each FGR step.
        assert per_refresh == {1: 16, 2: 8, 4: 4}

    @pytest.mark.parametrize("granularity", [1, 2, 4])
    def test_every_row_refreshed_once_per_window(self, granularity):
        from repro.dram.config import DRAMConfig

        base = DRAMConfig()
        config = (
            base
            if granularity == 1
            else FineGranularityRefreshPolicy(granularity).adjust_dram_config(base)
        )
        rows_per_window = config.refreshes_per_window * config.rows_per_refresh
        rows_per_bank = config.organization.rows_per_bank
        # Complete coverage, overshooting by strictly less than one ceil
        # row per REF command.
        assert rows_per_bank <= rows_per_window
        assert rows_per_window < rows_per_bank + config.refreshes_per_window


# --------------------------------------------------------------------------- #
# DDR5 Refresh Management (RFM)
# --------------------------------------------------------------------------- #
class TestRFMRefreshPolicy:
    def _rfm_controller(self, dram_config, raaimt=4, raammt=8, trfm=64):
        return make_controller(
            dram_config,
            policy=policy(
                refresh_policy="rfm",
                params={"raaimt": raaimt, "raammt": raammt, "trfm": trfm},
            ),
        )

    def test_invalid_thresholds_rejected(self):
        from repro.controller.policies import RFMRefreshPolicy

        with pytest.raises(ValueError, match="raaimt"):
            RFMRefreshPolicy(raaimt=0)
        with pytest.raises(ValueError, match="raammt"):
            RFMRefreshPolicy(raaimt=8, raammt=4)
        with pytest.raises(ValueError, match="trfm"):
            RFMRefreshPolicy(trfm=0)

    def test_raaimt_activations_trigger_rfm(self, tiny_dram_config):
        """Hammering one bank past RAAIMT issues an RFM that refreshes the
        hottest row's neighbours in-DRAM."""
        controller = self._rfm_controller(tiny_dram_config, raaimt=4)
        cycle = 0
        for i in range(8):
            # Alternating rows force a conflict - and therefore a fresh
            # ACT, which is what RAA counts - on every request.
            row = 10 if i % 2 == 0 else 20
            controller.enqueue(read_request(controller, row=row, cycle=cycle), cycle)
            cycle = run_until_idle(controller, start=cycle)
        assert controller.dram.stats.rfms >= 1
        assert controller.dram.stats.in_dram_refresh_rows >= 2

    def test_rfm_blocks_only_its_bank(self, tiny_dram_config):
        """An owed RFM outranks demand on its bank, but other banks keep
        issuing: tRFM is a bank-scoped blackout, not a rank one."""
        controller = self._rfm_controller(tiny_dram_config, raaimt=2, trfm=2000)
        for i in range(4):
            controller.enqueue(
                read_request(controller, row=10 + i, bank_index=0, cycle=0), 0
            )
        served_elsewhere = []
        other = read_request(controller, row=5, bank_index=1, cycle=0)
        other.on_complete = lambda req, cycle: served_elsewhere.append(cycle)
        controller.enqueue(other, 0)
        run_until_idle(controller)
        assert controller.dram.stats.rfms >= 1
        assert served_elsewhere and served_elsewhere[0] < 2000

    def test_periodic_refresh_pays_down_raa(self, tiny_dram_config):
        """REF credits RAAIMT back, so refresh-quiet banks never owe RFMs
        for activity a periodic refresh already covered."""
        from repro.controller.policies import RFMRefreshPolicy

        policy_obj = RFMRefreshPolicy(raaimt=4, raammt=8)
        controller = make_controller(tiny_dram_config)
        policy_obj.attach(controller)
        address = controller.mapper.decode(
            controller.mapper.address_for_row(3, bank_index=0)
        )
        for _ in range(3):
            policy_obj._observe_activation(0, address, False)
        bank_key = address.bank_key
        assert policy_obj._raa[bank_key] == 3
        assert not policy_obj.rfm_pending()
        policy_obj._observe_refresh(100, (address.channel, address.rank), 0, 8)
        assert policy_obj._raa[bank_key] == 0

    def test_snapshot_round_trip_mid_accumulation(self, tiny_dram_config):
        """A restored twin owes the same RFMs and picks the same victim."""
        import pickle

        from repro.controller.policies import RFMRefreshPolicy

        def build():
            p = RFMRefreshPolicy(raaimt=4, raammt=8)
            p.attach(make_controller(tiny_dram_config))
            return p

        original = build()
        mapper = original._controller.mapper
        rows = [7, 7, 9, 7, 11, 9, 7]
        for i, row in enumerate(rows):
            address = mapper.decode(mapper.address_for_row(row, bank_index=0))
            original._observe_activation(i, address, False)
        state = pickle.loads(pickle.dumps(original.snapshot()))

        restored = build()
        restored.restore(state)
        assert restored._raa == original._raa
        assert restored._row_acts == original._row_acts
        assert list(restored.rfm_pending()) == list(original.rfm_pending())
        # Service the owed RFM on both: same victim row chosen, same payback.
        (bank_key,) = original.rfm_pending()
        original.on_rfm(100, bank_key)
        restored.on_rfm(100, bank_key)
        assert restored._raa == original._raa
        assert restored._row_acts == original._row_acts
        assert (
            original._controller.dram.stats.in_dram_refresh_rows
            == restored._controller.dram.stats.in_dram_refresh_rows
        )

    def test_rfm_end_to_end_secure_at_low_nrh(self):
        """The scaling-study contract in miniature: NRH-scaled RFM holds
        the invariant against blacksmith at NRH=64 (see repro.security
        .audit.rfm_policy_for_nrh for the margin argument)."""
        spec = ExperimentSpec(
            workload=WorkloadSpec(name="synth_blacksmith", num_requests=2500),
            mitigation=MitigationSpec(name="none", nrh=64),
            platform=PlatformSpec(
                controller=policy(
                    refresh_policy="rfm", params={"raaimt": 16, "raammt": 32}
                )
            ),
            verify_security="streaming",
        )
        result = execute_spec(spec)
        assert result.security_ok
        assert result.max_disturbance <= 2 * 16
        # RFM traffic shows up in the energy breakdown (dram_stats keeps
        # its golden 7-key shape; the DDR5 terms ride the energy dict).
        assert result.energy.as_dict()["rfm_nj"] > 0
