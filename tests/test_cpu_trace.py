"""Tests for the trace format and statistics."""

import pytest

from repro.cpu.trace import Trace, TraceEntry


class TestTraceEntry:
    def test_valid_entry(self):
        entry = TraceEntry(10, 0x1000, True)
        assert entry.bubble_count == 10
        assert entry.is_write

    def test_negative_bubble_rejected(self):
        with pytest.raises(ValueError):
            TraceEntry(-1, 0x1000)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            TraceEntry(1, -4)


class TestTrace:
    def test_from_tuples(self):
        trace = Trace.from_tuples([(5, 0x40), (3, 0x80, True)], name="t")
        assert len(trace) == 2
        assert trace[1].is_write
        assert trace.name == "t"

    def test_from_tuples_accepts_entries(self):
        trace = Trace.from_tuples([TraceEntry(1, 2)])
        assert trace[0].bubble_count == 1

    def test_total_instructions(self):
        trace = Trace.from_tuples([(5, 0x40), (3, 0x80)])
        # bubbles plus one instruction per memory access
        assert trace.total_instructions == 5 + 1 + 3 + 1

    def test_statistics(self):
        trace = Trace.from_tuples([(5, 0x40), (3, 0x80, True), (2, 0x40)])
        stats = trace.statistics()
        assert stats.num_entries == 3
        assert stats.num_reads == 2
        assert stats.num_writes == 1
        assert stats.unique_addresses == 2
        assert stats.accesses_per_kilo_instruction == pytest.approx(3000 / 13)

    def test_repeated(self):
        trace = Trace.from_tuples([(1, 0x40)])
        repeated = trace.repeated(3)
        assert len(repeated) == 3
        with pytest.raises(ValueError):
            trace.repeated(0)

    def test_truncated(self):
        trace = Trace.from_tuples([(1, 0x40), (2, 0x80), (3, 0xC0)])
        assert len(trace.truncated(2)) == 2

    def test_iteration_and_indexing(self):
        trace = Trace.from_tuples([(1, 0x40), (2, 0x80)])
        assert [entry.address for entry in trace] == [0x40, 0x80]
        assert trace[0].bubble_count == 1

    def test_append_and_extend(self):
        trace = Trace()
        trace.append(TraceEntry(1, 0x40))
        trace.extend([TraceEntry(2, 0x80)])
        assert len(trace) == 2

    def test_save_and_load_roundtrip(self, tmp_path):
        trace = Trace.from_tuples([(5, 0x1000), (0, 0x2000, True)], name="roundtrip")
        path = tmp_path / "trace.txt"
        trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == 2
        assert loaded[0].bubble_count == 5
        assert loaded[0].address == 0x1000
        assert loaded[1].is_write
        assert loaded.name == "trace"

    def test_load_skips_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# comment\n\n3 0x100\n")
        loaded = Trace.load(path)
        assert len(loaded) == 1

    def test_load_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("justonefield\n")
        with pytest.raises(ValueError):
            Trace.load(path)

    def test_empty_trace_statistics(self):
        stats = Trace().statistics()
        assert stats.num_entries == 0
        assert stats.accesses_per_kilo_instruction == 0.0
