"""Tests for the counting Bloom filter (BlockHammer's tracker substrate)."""

import pytest

from repro.sketch.counting_bloom import (
    CountingBloomFilter,
    DualCountingBloomFilter,
    false_positive_rate,
)


class TestCountingBloomFilter:
    def test_single_key_exact(self):
        cbf = CountingBloomFilter(num_counters=256, num_hashes=4, seed=1)
        for _ in range(12):
            cbf.update(500)
        assert cbf.estimate(500) == 12

    def test_never_underestimates(self):
        cbf = CountingBloomFilter(num_counters=64, num_hashes=3, seed=2)
        truth = {}
        for key in range(200):
            count = key % 4 + 1
            truth[key] = count
            for _ in range(count):
                cbf.update(key)
        for key, count in truth.items():
            assert cbf.estimate(key) >= count

    def test_contains_threshold(self):
        cbf = CountingBloomFilter(num_counters=128, num_hashes=4)
        cbf.update(3, 10)
        assert cbf.contains(3, 10)
        assert not cbf.contains(3, 11)

    def test_reset(self):
        cbf = CountingBloomFilter(num_counters=64, num_hashes=2)
        cbf.update(1, 5)
        cbf.reset()
        assert cbf.estimate(1) == 0
        assert cbf.total_updates == 0

    def test_saturation(self):
        cbf = CountingBloomFilter(num_counters=32, num_hashes=2, counter_width_bits=4)
        cbf.update(9, 100)
        assert cbf.estimate(9) == 15

    def test_negative_update_rejected(self):
        cbf = CountingBloomFilter(num_counters=32, num_hashes=2)
        with pytest.raises(ValueError):
            cbf.update(1, -1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(num_counters=0, num_hashes=2)
        with pytest.raises(ValueError):
            CountingBloomFilter(num_counters=16, num_hashes=0)

    def test_storage_bits(self):
        cbf = CountingBloomFilter(num_counters=1024, num_hashes=4, counter_width_bits=16)
        assert cbf.storage_bits == 1024 * 16

    def test_shared_array_creates_more_aliasing_than_partitioned_cms(self):
        """The structural point of Figure 17: sharing one array aliases more.

        With the same total counter budget, the CBF (shared array) should
        produce at least as much total overestimation as a partitioned CMS.
        """
        from repro.sketch.count_min import ConservativeCountMinSketch, SketchConfig

        cms = ConservativeCountMinSketch(
            SketchConfig(num_hashes=4, counters_per_hash=64, counter_width_bits=16, seed=4)
        )
        cbf = CountingBloomFilter(num_counters=256, num_hashes=4, seed=4)
        truth = {}
        stream = [(key * 17) % 1499 for key in range(6000)]
        for key in stream:
            truth[key] = truth.get(key, 0) + 1
            cms.update(key)
            cbf.update(key)
        cms_error = sum(cms.estimate(k) - c for k, c in truth.items())
        cbf_error = sum(cbf.estimate(k) - c for k, c in truth.items())
        assert cbf_error >= cms_error * 0.5  # CBF should not be dramatically better


class TestDualCountingBloomFilter:
    def test_updates_touch_both_filters(self):
        dual = DualCountingBloomFilter(num_counters=128, num_hashes=3)
        dual.update(42, 4)
        assert dual.active.estimate(42) == 4
        assert dual.passive.estimate(42) == 4

    def test_rollover_keeps_recent_history(self):
        dual = DualCountingBloomFilter(num_counters=128, num_hashes=3)
        dual.update(42, 4)
        dual.rollover()
        # The formerly passive filter (which also saw the updates) is active now.
        assert dual.estimate(42) == 4
        dual.rollover()
        # After two rollovers with no new updates the count is gone.
        assert dual.estimate(42) == 0

    def test_reset(self):
        dual = DualCountingBloomFilter(num_counters=64, num_hashes=2)
        dual.update(3, 9)
        dual.rollover()
        dual.reset()
        assert dual.estimate(3) == 0
        assert dual.epoch == 0

    def test_storage_is_double_single_filter(self):
        dual = DualCountingBloomFilter(num_counters=256, num_hashes=4, counter_width_bits=8)
        assert dual.storage_bits == 2 * 256 * 8


class TestFalsePositiveHelper:
    def test_no_flagged_keys(self):
        rate = false_positive_rate(lambda k: 0, [1, 2, 3], {1: 5}, threshold=10)
        assert rate == 0.0

    def test_all_flagged_are_true_positives(self):
        truth = {1: 20, 2: 30}
        rate = false_positive_rate(lambda k: truth.get(k, 0), [1, 2], truth, threshold=10)
        assert rate == 0.0

    def test_mixed_false_positives(self):
        estimates = {1: 20, 2: 20, 3: 2}
        truth = {1: 20, 2: 3, 3: 2}
        rate = false_positive_rate(lambda k: estimates[k], [1, 2, 3], truth, threshold=10)
        assert rate == pytest.approx(0.5)
