"""Tests for the sampled-fidelity executor (``fidelity="sampled"``).

Three guarantees, in decreasing order of strictness:

* **Security-event completeness** (hypothesis, the verifier-boundary
  property): the fast-forward path replays *every* activation into the
  mitigation and verifier observers and applies every periodic refresh at
  its tREFI crossing, so an attack a full-fidelity run flags as insecure is
  flagged by a sampled run for *any* sampling configuration — threshold
  crossings can never fall between detailed windows.  Verdicts are compared
  against the same streaming verifier the audit campaigns use.
* **Error bounds**: IPC and max_disturbance of a sampled run stay within a
  configured tolerance of the full-fidelity run (the calibrated fast-forward
  pace is measured in the detailed windows, so this bounds how representative
  the windows are).
* **Cache hygiene**: a sampled spec hashes and sweep-caches under a
  different key than its full-fidelity twin, while full-fidelity hashing is
  byte-identical to before the fidelity axis existed.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiment.execute import execute_spec
from repro.experiment.spec import ExperimentSpec, SampledConfig
from repro.sim.sweep import spec_cache_key

#: Relative IPC tolerance for sampled runs on the workloads below.  The
#: calibrated pace tracks full fidelity to within a few percent (see
#: EXPERIMENTS.md); 15% leaves headroom for platform scheduling noise
#: without letting the estimate drift into uselessness.
IPC_TOLERANCE = 0.15
#: max_disturbance is phase-sensitive (it depends on where activations fall
#: relative to refresh boundaries, which sampling estimates), so its bound
#: is looser; the *verdict* (secure / not secure) has its own exact tests.
DISTURBANCE_TOLERANCE = 0.5


def _spec(workload, mitigation, nrh, fidelity="full", sampled=None, verify=True):
    data = {
        "workload": workload,
        "mitigation": {"name": mitigation, "nrh": nrh},
        "verify_security": verify,
    }
    if fidelity != "full":
        data["fidelity"] = fidelity
        if sampled is not None:
            data["sampled"] = sampled
    return ExperimentSpec.from_dict(data)


BENIGN = {"name": "synth_uniform", "num_requests": 12000}
ATTACK = {"name": "synth_blacksmith", "num_requests": 12000}


@pytest.fixture(scope="module")
def full_benign():
    return execute_spec(_spec(BENIGN, "comet", 500))


@pytest.fixture(scope="module")
def full_attack_unprotected():
    return execute_spec(_spec(ATTACK, "none", 125, verify="streaming"))


class TestErrorBounds:
    def test_benign_ipc_within_tolerance(self, full_benign):
        sampled = execute_spec(_spec(BENIGN, "comet", 500, fidelity="sampled"))
        assert sampled.ipc == pytest.approx(full_benign.ipc, rel=IPC_TOLERANCE)

    def test_benign_disturbance_within_tolerance(self, full_benign):
        sampled = execute_spec(_spec(BENIGN, "comet", 500, fidelity="sampled"))
        assert sampled.max_disturbance == pytest.approx(
            full_benign.max_disturbance, rel=DISTURBANCE_TOLERANCE, abs=2
        )
        assert sampled.security_ok == full_benign.security_ok

    def test_attack_ipc_within_tolerance(self):
        full = execute_spec(_spec(ATTACK, "comet", 250))
        sampled = execute_spec(_spec(ATTACK, "comet", 250, fidelity="sampled"))
        assert sampled.ipc == pytest.approx(full.ipc, rel=IPC_TOLERANCE)
        assert sampled.security_ok == full.security_ok

    def test_event_stream_is_complete(self, full_benign):
        """Fast-forward skips timing, never events: every demand access and
        every periodic refresh is observed (counts are exact for reads and
        writes; ACT counts track row-buffer state, which is functional)."""
        sampled = execute_spec(_spec(BENIGN, "comet", 500, fidelity="sampled"))
        assert sampled.dram_stats["reads"] == full_benign.dram_stats["reads"]
        assert sampled.dram_stats["writes"] == full_benign.dram_stats["writes"]
        full_refreshes = full_benign.dram_stats["refreshes"]
        assert sampled.dram_stats["refreshes"] == pytest.approx(
            full_refreshes, rel=0.2, abs=2
        )

    def test_per_core_instructions_exact(self, full_benign):
        sampled = execute_spec(_spec(BENIGN, "comet", 500, fidelity="sampled"))
        assert (
            sampled.per_core_instructions == full_benign.per_core_instructions
        )


class TestVerifierBoundaryProperty:
    """Threshold crossings are never sampled away.

    The unprotected blacksmith run is insecure at NRH=125 under full
    fidelity; any sampling configuration must reproduce the insecure
    verdict, because the verifier sees the complete activation stream and
    every refresh-window boundary (refreshes are applied at their exact
    tREFI crossings during fast-forward).
    """

    @settings(max_examples=6, deadline=None)
    @given(
        interval=st.integers(400, 4000),
        detailed_window=st.integers(1, 399),
        warmup=st.integers(0, 400),
    )
    def test_attack_detected_under_any_sampling(
        self, full_attack_unprotected, interval, detailed_window, warmup
    ):
        assert not full_attack_unprotected.security_ok
        sampled = execute_spec(
            _spec(
                ATTACK,
                "none",
                125,
                fidelity="sampled",
                sampled={
                    "interval": interval,
                    "detailed_window": detailed_window,
                    "warmup": warmup,
                },
                verify="streaming",
            )
        )
        assert not sampled.security_ok
        assert sampled.security_violations > 0
        assert sampled.first_violation_cycle is not None
        # The streaming verifier's running maximum crosses the threshold in
        # both modes — the disturbance events themselves are unsampled.
        assert sampled.max_disturbance >= 125

    @settings(max_examples=4, deadline=None)
    @given(interval=st.integers(500, 3000), detailed_window=st.integers(50, 400))
    def test_benign_stays_secure_under_any_sampling(
        self, full_benign, interval, detailed_window
    ):
        assert full_benign.security_ok
        sampled = execute_spec(
            _spec(
                BENIGN,
                "comet",
                500,
                fidelity="sampled",
                sampled={"interval": interval, "detailed_window": detailed_window},
            )
        )
        assert sampled.security_ok


class TestCacheHygiene:
    def test_sampled_spec_hashes_differently(self):
        full = _spec(BENIGN, "comet", 500)
        sampled = _spec(BENIGN, "comet", 500, fidelity="sampled")
        assert full.content_hash() != sampled.content_hash()
        assert spec_cache_key(full) != spec_cache_key(sampled)

    def test_sampling_knobs_hash_differently(self):
        a = _spec(BENIGN, "comet", 500, fidelity="sampled")
        b = _spec(
            BENIGN, "comet", 500, fidelity="sampled", sampled={"interval": 4000}
        )
        assert a.content_hash() != b.content_hash()
        assert spec_cache_key(a) != spec_cache_key(b)

    def test_full_fidelity_serialization_has_no_fidelity_keys(self):
        """Full-fidelity hashing is byte-identical to the pre-fidelity
        format (the pinned-hash test in test_experiment.py seals the exact
        digest; this pins the mechanism)."""
        full = _spec(BENIGN, "comet", 500)
        data = full.to_dict()
        assert "fidelity" not in data
        assert "sampled" not in data

    def test_sampled_spec_round_trips(self):
        spec = _spec(
            BENIGN,
            "comet",
            500,
            fidelity="sampled",
            sampled={"interval": 3000, "detailed_window": 300, "warmup": 100},
        )
        again = ExperimentSpec.from_json(spec.to_json())
        assert again == spec
        assert again.sampled == SampledConfig(
            interval=3000, detailed_window=300, warmup=100
        )


class TestDDR5MechanismFidelity:
    """PRAC/ABO and the RFM refresh policy keep their verdicts when sampled.

    Both mechanisms' protective state advances during functional
    fast-forward — PRAC's per-row counters through the replayed activation
    stream, RFM's RAA accounting through the activation/refresh observers
    (with the RAAMMT backstop applying the management action functionally,
    since fast-forward runs no scheduler) — so a sampled run reaches the
    same security verdict as the full-fidelity run it approximates.
    """

    def test_prac_verdict_and_disturbance_preserved(self):
        attack = {"name": "synth_blacksmith", "num_requests": 6000}
        full = execute_spec(_spec(attack, "prac", 64, verify="streaming"))
        sampled = execute_spec(
            _spec(attack, "prac", 64, fidelity="sampled", verify="streaming")
        )
        assert full.security_ok and sampled.security_ok
        # The ABO alert threshold bounds disturbance identically in both
        # modes: every activation is replayed into the in-DRAM counters.
        assert full.max_disturbance < 64
        assert sampled.max_disturbance == full.max_disturbance

    def test_rfm_policy_verdict_preserved(self):
        def spec(fidelity):
            data = {
                "workload": {"name": "synth_blacksmith", "num_requests": 6000},
                "mitigation": {"name": "none", "nrh": 64},
                "verify_security": "streaming",
                "platform": {
                    "controller": {
                        "refresh_policy": "rfm",
                        "params": {"raaimt": 16, "raammt": 32},
                    }
                },
            }
            if fidelity != "full":
                data["fidelity"] = fidelity
            return ExperimentSpec.from_dict(data)

        full = execute_spec(spec("full"))
        sampled = execute_spec(spec("sampled"))
        assert full.security_ok and sampled.security_ok
        assert full.max_disturbance < 64
        assert sampled.max_disturbance < 64
