"""Tests for the design-space sweep executor (:mod:`repro.sim.sweep`)."""

import pytest

from repro.core.config import CoMeTConfig
from repro.sim.runner import run_single_core
from repro.sim.sweep import (
    SweepCache,
    SweepPoint,
    SweepRunner,
    execute_point,
    point_cache_key,
)
from repro.workloads.suite import build_trace

REQUESTS = 400


@pytest.fixture
def runner(tiny_dram_config, tmp_path):
    return SweepRunner(
        dram_config=tiny_dram_config, max_workers=0, cache_dir=tmp_path / "cache"
    )


def _points():
    return SweepRunner.grid(
        workloads=["429.mcf"],
        mitigations=["comet", "para"],
        nrhs=[1000, 125],
        num_requests=REQUESTS,
    )


class TestGrid:
    def test_grid_shape(self):
        points = _points()
        # 1 baseline + 2 mitigations x 2 thresholds.
        assert len(points) == 5
        assert sum(1 for p in points if p.mitigation == "none") == 1

    def test_baseline_not_verified(self):
        baseline = next(p for p in _points() if p.mitigation == "none")
        assert baseline.verify_security is False

    def test_grid_skips_explicit_none(self):
        points = SweepRunner.grid(
            workloads=["429.mcf"], mitigations=["none", "comet"], nrhs=[125]
        )
        assert sum(1 for p in points if p.mitigation == "none") == 1


class TestExecutePoint:
    def test_matches_direct_runner_call(self, tiny_dram_config):
        point = SweepPoint(
            workload="429.mcf", mitigation="comet", nrh=125, num_requests=REQUESTS
        )
        via_sweep = execute_point(point, dram_config=tiny_dram_config)
        trace = build_trace("429.mcf", num_requests=REQUESTS, dram_config=tiny_dram_config)
        direct = run_single_core(trace, "comet", nrh=125, dram_config=tiny_dram_config)
        assert via_sweep.summary() == direct.summary()
        assert via_sweep.per_core_ipc == direct.per_core_ipc

    def test_multicore_point(self, tiny_dram_config):
        point = SweepPoint(
            workload="462.libquantum",
            mitigation="comet",
            nrh=250,
            num_requests=200,
            num_cores=2,
        )
        result = execute_point(point, dram_config=tiny_dram_config)
        assert len(result.per_core_ipc) == 2
        assert result.name == "462.libquantum_x2"

    def test_overrides_forwarded(self, tiny_dram_config):
        point = SweepPoint(
            workload="429.mcf",
            mitigation="comet",
            nrh=125,
            num_requests=REQUESTS,
            mitigation_overrides={"config": CoMeTConfig(nrh=125, rat_entries=64)},
        )
        result = execute_point(point, dram_config=tiny_dram_config)
        assert result.mitigation_name == "comet"


class TestCacheKey:
    def test_key_stable(self, tiny_dram_config):
        point = SweepPoint(workload="429.mcf", mitigation="comet", nrh=125)
        assert point_cache_key(point, tiny_dram_config, None) == point_cache_key(
            point, tiny_dram_config, None
        )

    def test_key_covers_every_field(self, tiny_dram_config, small_dram_config):
        base = SweepPoint(workload="429.mcf", mitigation="comet", nrh=125)
        variants = [
            SweepPoint(workload="502.gcc", mitigation="comet", nrh=125),
            SweepPoint(workload="429.mcf", mitigation="para", nrh=125),
            SweepPoint(workload="429.mcf", mitigation="comet", nrh=250),
            SweepPoint(workload="429.mcf", mitigation="comet", nrh=125, num_requests=999),
            SweepPoint(workload="429.mcf", mitigation="comet", nrh=125, num_cores=2),
            SweepPoint(workload="429.mcf", mitigation="comet", nrh=125, seed=7),
            SweepPoint(
                workload="429.mcf",
                mitigation="comet",
                nrh=125,
                mitigation_overrides={"config": CoMeTConfig(nrh=125, num_hashes=2)},
            ),
        ]
        base_key = point_cache_key(base, tiny_dram_config, None)
        keys = {point_cache_key(v, tiny_dram_config, None) for v in variants}
        keys.add(point_cache_key(base, small_dram_config, None))
        assert base_key not in keys
        assert len(keys) == len(variants) + 1

    @pytest.mark.parametrize(
        "payload",
        [
            b"not a pickle",  # UnpicklingError
            b"garbage\n",  # ValueError (pickle raises almost anything)
            __import__("pickle").dumps({"not": "a result"}),  # wrong type
        ],
    )
    def test_corrupt_cache_entry_is_a_miss(self, tmp_path, payload):
        cache = SweepCache(tmp_path)
        key = "0" * 64
        cache.directory.mkdir(parents=True, exist_ok=True)
        (cache.directory / f"{key}.pkl").write_bytes(payload)
        assert cache.get(key) is None
        assert cache.misses == 1


class TestSweepRunner:
    def test_results_in_input_order(self, runner):
        points = _points()
        results = runner.run(points)
        assert len(results) == len(points)
        for point, result in zip(points, results):
            assert result.mitigation_name == point.mitigation

    def test_cache_round_trip_is_identical(self, runner):
        points = _points()
        first = runner.run(points)
        assert runner.cache.hits == 0
        second = runner.run(points)
        assert runner.cache.hits == len(points)
        assert [r.summary() for r in first] == [r.summary() for r in second]
        assert [r.per_core_ipc for r in first] == [r.per_core_ipc for r in second]

    def test_cache_disabled(self, tiny_dram_config):
        runner = SweepRunner(dram_config=tiny_dram_config, max_workers=0, use_cache=False)
        assert runner.cache is None
        results = runner.run(_points()[:2])
        assert len(results) == 2

    def test_progress_callback_reports_cache_state(self, runner):
        points = _points()[:2]
        seen = []
        runner.run(points, progress=lambda p, r, cached: seen.append((p.label(), cached)))
        assert [cached for _, cached in seen] == [False, False]
        seen.clear()
        runner.run(points, progress=lambda p, r, cached: seen.append((p.label(), cached)))
        assert [cached for _, cached in seen] == [True, True]

    def test_failing_point_keeps_earlier_points_cached(self, tiny_dram_config, tmp_path):
        good = SweepPoint("429.mcf", "comet", 125, num_requests=REQUESTS)
        bad = SweepPoint("no-such-workload", "comet", 125, num_requests=REQUESTS)
        runner = SweepRunner(
            dram_config=tiny_dram_config, max_workers=0, cache_dir=tmp_path / "c"
        )
        with pytest.raises(KeyError, match="unknown workload"):
            runner.run([good, bad])
        rerun = SweepRunner(
            dram_config=tiny_dram_config, max_workers=0, cache_dir=tmp_path / "c"
        )
        rerun.run([good])
        assert rerun.cache.hits == 1

    @pytest.mark.slow
    def test_parallel_workers_match_serial_bit_for_bit(self, tiny_dram_config, tmp_path):
        points = _points()
        serial = SweepRunner(
            dram_config=tiny_dram_config, max_workers=0, use_cache=False
        ).run(points)
        parallel = SweepRunner(
            dram_config=tiny_dram_config, max_workers=4, use_cache=False
        ).run(points)
        assert [r.summary() for r in serial] == [r.summary() for r in parallel]
        assert [r.per_core_ipc for r in serial] == [r.per_core_ipc for r in parallel]
        assert [r.dram_stats for r in serial] == [r.dram_stats for r in parallel]
