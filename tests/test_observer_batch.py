"""Batch == serial activation-observer equivalence, property-tested.

The fast-path DRAM model delivers ACT events to *pure* observers in
batches — SoA columns handed to ``observe_batch`` at drain points
(refresh boundaries, snapshots, window end) — instead of one callback per
ACT.  That is only sound if batch delivery is behaviorally identical to
per-event delivery, which the protocol guarantees two ways:

* :meth:`repro.mitigations.base.MitigationMechanism.observe_batch`'s
  default body *is* the serial loop over ``on_activation``, so every
  mechanism inherits exact equivalence (and feedback mechanisms are never
  driven through batches by the simulation anyway — their preventive
  refreshes must land synchronously in the command stream);
* the streaming :class:`~repro.analysis.security.SecurityVerifier`
  overrides it with a hoisted/vectorized body that must produce the same
  verdict bit-for-bit.

These tests pin both claims for arbitrary event streams and arbitrary
batch partitionings: same final snapshot, same controller side effects,
same verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.security import SecurityVerifier
from repro.dram.address import AddressMapper, DRAMAddress
from repro.dram.config import DRAMConfig, small_test_config
from repro.dram.dram_system import DRAMSystem
from repro.experiment.registry import mitigation_entries, mitigation_names

#: High enough that every mechanism is feasible (PARA's refresh
#: probability goes supercritical at low thresholds).
MECHANISM_NRH = 500
#: Low enough that the generated event streams actually produce violations.
VERIFIER_NRH = 6
SEED = 7


def _tiny_config() -> DRAMConfig:
    """The conftest tiny config, rebuilt per example (hypothesis-safe)."""
    return small_test_config(
        rows_per_bank=256,
        banks_per_bankgroup=2,
        bankgroups_per_rank=2,
        ranks_per_channel=1,
        refresh_window_scale=1.0 / 2048.0,
    )


class _RecordingDRAMStats:
    def __init__(self) -> None:
        self.counter_updates = 0


class _RecordingDRAM:
    """Captures the row refreshes and stats a mechanism pushes straight to DRAM."""

    def __init__(self) -> None:
        self.row_refreshes: List[Tuple[int, DRAMAddress]] = []
        self.stats = _RecordingDRAMStats()

    def notify_row_refresh(self, cycle: int, address: DRAMAddress) -> None:
        self.row_refreshes.append((cycle, address))


@dataclass
class _RecordingController:
    """Captures every controller-side effect a mechanism can produce."""

    dram_config: DRAMConfig
    preventive_refreshes: List[Tuple[DRAMAddress, int]] = field(default_factory=list)
    rank_refreshes: List[Tuple[int, int, int]] = field(default_factory=list)
    mitigation_requests: List[Tuple[DRAMAddress, bool, int]] = field(
        default_factory=list
    )

    def __post_init__(self) -> None:
        self.mapper = AddressMapper(self.dram_config)
        self.dram = _RecordingDRAM()

    def schedule_preventive_refresh(self, address: DRAMAddress, cycle: int) -> None:
        self.preventive_refreshes.append((address, cycle))

    def schedule_rank_refresh(self, channel: int, rank: int, count: int) -> None:
        self.rank_refreshes.append((channel, rank, count))

    def enqueue_mitigation_request(
        self, address: DRAMAddress, is_write: bool, cycle: int
    ) -> bool:
        self.mitigation_requests.append((address, is_write, cycle))
        return True


# One raw event: (bank_index in [0, 4), row in [0, 256), preventive flag,
# cycle gap to the previous event).  Cycles are built as a running sum so
# event order and timestamps are always consistent.
_events_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        # Rows from a small pool so streams revisit the same aggressors and
        # the verifier's NRH threshold is actually crossed in many examples.
        st.integers(min_value=0, max_value=9),
        st.booleans(),
        st.integers(min_value=0, max_value=50),
    ),
    min_size=1,
    max_size=120,
)


def _materialize(config, raw_events):
    """(cycles, addresses, flags) SoA columns from the raw event tuples."""
    mapper = AddressMapper(config)
    cycles, addresses, flags = [], [], []
    cycle = 0
    for bank_index, row, preventive, gap in raw_events:
        cycle += gap
        cycles.append(cycle)
        addresses.append(
            mapper.decode(mapper.address_for_row(row, bank_index=bank_index))
        )
        flags.append(preventive)
    return cycles, addresses, flags


def _partition(data, n):
    """Draw a list of batch lengths covering ``n`` events exactly."""
    sizes = []
    remaining = n
    while remaining > 0:
        size = data.draw(st.integers(min_value=1, max_value=remaining))
        sizes.append(size)
        remaining -= size
    return sizes


@pytest.mark.parametrize("name", mitigation_names())
class TestMechanismBatchEqualsSerial:
    """Every registered mechanism: observe_batch == on_activation loop."""

    @settings(max_examples=25, deadline=None)
    @given(raw_events=_events_strategy, data=st.data())
    def test_batch_matches_serial(self, name, raw_events, data):
        config = _tiny_config()
        entry = mitigation_entries()[name]
        serial = entry.build(MECHANISM_NRH, seed=SEED)
        batched = entry.build(MECHANISM_NRH, seed=SEED)
        serial_ctl = _RecordingController(dram_config=config)
        batched_ctl = _RecordingController(dram_config=config)
        serial.attach(serial_ctl)
        batched.attach(batched_ctl)

        cycles, addresses, flags = _materialize(config, raw_events)
        for cycle, address, flag in zip(cycles, addresses, flags):
            serial.on_activation(cycle, address, flag)
        start = 0
        for size in _partition(data, len(cycles)):
            batched.observe_batch(
                cycles[start : start + size],
                addresses[start : start + size],
                flags[start : start + size],
            )
            start += size

        assert batched.snapshot() == serial.snapshot()
        assert batched_ctl.preventive_refreshes == serial_ctl.preventive_refreshes
        assert batched_ctl.rank_refreshes == serial_ctl.rank_refreshes
        assert batched_ctl.mitigation_requests == serial_ctl.mitigation_requests
        assert batched_ctl.dram.row_refreshes == serial_ctl.dram.row_refreshes
        assert (
            batched_ctl.dram.stats.counter_updates
            == serial_ctl.dram.stats.counter_updates
        )
        # The per-address ACT throttle (BlockHammer) must agree too.
        probe = addresses[-1]
        probe_cycle = cycles[-1] + 1
        assert batched.act_allowed_cycle(probe, probe_cycle) == serial.act_allowed_cycle(
            probe, probe_cycle
        )


class TestVerifierBatchEqualsSerial:
    """The SecurityVerifier's vectorized observe_batch == the serial observer."""

    @staticmethod
    def _pair(config, record_violations, blast_radius):
        serial = SecurityVerifier(
            DRAMSystem(config),
            nrh=VERIFIER_NRH,
            blast_radius=blast_radius,
            record_violations=record_violations,
        )
        batched = SecurityVerifier(
            DRAMSystem(config),
            nrh=VERIFIER_NRH,
            blast_radius=blast_radius,
            record_violations=record_violations,
        )
        return serial, batched

    @settings(max_examples=25, deadline=None)
    @given(
        raw_events=_events_strategy,
        data=st.data(),
        record_violations=st.booleans(),
        blast_radius=st.integers(min_value=1, max_value=2),
    )
    def test_batch_matches_serial(
        self, raw_events, data, record_violations, blast_radius
    ):
        # blast_radius=1 exercises the unrolled fast branch, 2 the generic
        # fallback; record_violations covers both audit modes.
        config = _tiny_config()
        serial, batched = self._pair(config, record_violations, blast_radius)
        cycles, addresses, flags = _materialize(config, raw_events)
        for cycle, address, flag in zip(cycles, addresses, flags):
            serial._on_activation(cycle, address, flag)
        start = 0
        for size in _partition(data, len(cycles)):
            batched.observe_batch(
                cycles[start : start + size],
                addresses[start : start + size],
                flags[start : start + size],
            )
            start += size

        assert batched.snapshot() == serial.snapshot()
        assert batched.violation_count == serial.violation_count
        assert batched.max_disturbance == serial.max_disturbance
        assert batched.first_violation_cycle == serial.first_violation_cycle
        assert batched.violations == serial.violations

    def test_streaming_fastpath_wires_batches(self):
        """On a fast-path DRAM system, streaming audits register the batch
        observer (the drain-point protocol), recording audits stay serial."""
        from repro import fastpath

        with fastpath.forced(True):
            dram = DRAMSystem(_tiny_config())
            streaming = SecurityVerifier(dram, nrh=VERIFIER_NRH, record_violations=False)
            recording = SecurityVerifier(dram, nrh=VERIFIER_NRH, record_violations=True)
        assert streaming._batched
        assert not recording._batched
