"""Tests for the RowPress-aware threshold adaptation."""

import pytest

from repro.core.rowpress import (
    RowPressAwareConfig,
    effective_rowhammer_threshold,
    row_open_time_cap_cycles,
    rowpress_reduction_factor,
)
from repro.dram.config import DRAMTiming


class TestReductionFactor:
    def test_minimum_open_time_no_reduction(self):
        assert rowpress_reduction_factor(36.0) == pytest.approx(1.0)
        assert rowpress_reduction_factor(10.0) == pytest.approx(1.0)

    def test_monotonically_decreasing(self):
        times = [36, 100, 1_000, 10_000, 100_000, 1_000_000]
        factors = [rowpress_reduction_factor(t) for t in times]
        assert all(a >= b for a, b in zip(factors, factors[1:]))

    def test_one_to_two_orders_of_magnitude(self):
        """RowPress reduces the budget by 10-100x at long open times (paper, Section 3.1)."""
        assert rowpress_reduction_factor(10_000) == pytest.approx(0.1, rel=0.01)
        assert rowpress_reduction_factor(1_000_000) == pytest.approx(0.01, rel=0.01)

    def test_clamped_beyond_last_anchor(self):
        assert rowpress_reduction_factor(10_000_000) == pytest.approx(0.01)

    def test_interpolation_between_anchors(self):
        middle = rowpress_reduction_factor(3_000)
        assert 0.1 < middle < 0.5

    def test_invalid_time(self):
        with pytest.raises(ValueError):
            rowpress_reduction_factor(0)


class TestEffectiveThreshold:
    def test_no_reduction_at_short_open_time(self):
        assert effective_rowhammer_threshold(1000, 36.0) == 1000

    def test_reduction_at_long_open_time(self):
        assert effective_rowhammer_threshold(1000, 10_000) == 100
        assert effective_rowhammer_threshold(1000, 1_000_000) == 10

    def test_never_below_one(self):
        assert effective_rowhammer_threshold(10, 1_000_000) >= 1

    def test_invalid_nrh(self):
        with pytest.raises(ValueError):
            effective_rowhammer_threshold(0, 100)


class TestRowOpenTimeCap:
    def test_cap_at_least_tras(self):
        timing = DRAMTiming()
        assert row_open_time_cap_cycles(timing, target_factor=1.0) >= timing.tRAS

    def test_smaller_target_factor_allows_longer_open_time(self):
        strict = row_open_time_cap_cycles(target_factor=0.9)
        relaxed = row_open_time_cap_cycles(target_factor=0.1)
        assert relaxed >= strict

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            row_open_time_cap_cycles(target_factor=0.0)


class TestRowPressAwareConfig:
    def test_effective_threshold_used_for_comet(self):
        config = RowPressAwareConfig(nrh=1000, max_row_open_time_ns=10_000)
        assert config.effective_nrh == 100
        comet = config.comet_config()
        assert comet.nrh == 100
        assert comet.npr == 25

    def test_default_open_time_is_classic_rowhammer(self):
        config = RowPressAwareConfig(nrh=1000)
        assert config.effective_nrh == 1000

    def test_overrides_forwarded(self):
        config = RowPressAwareConfig(nrh=1000, max_row_open_time_ns=1_000)
        comet = config.comet_config(rat_entries=64)
        assert comet.rat_entries == 64

    def test_describe_mentions_thresholds(self):
        text = RowPressAwareConfig(nrh=500, max_row_open_time_ns=10_000).describe()
        assert "500" in text and "50" in text
