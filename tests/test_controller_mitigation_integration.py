"""Integration tests: mitigations driving the *real* memory controller.

The unit tests in test_mitigations_*.py exercise each mechanism against a
fake controller; these tests wire them into the actual FR-FCFS controller and
DRAM model and check the end-to-end effects: preventive ACT/PRE pairs reaching
DRAM, Hydra's counter traffic competing for bandwidth, BlockHammer's
throttling delaying commands, REGA's timing rewrite, and CoMeT's early
preventive refresh issuing real REF bursts.
"""


from repro.controller.controller import MemoryController
from repro.controller.request import MemoryRequest, RequestType
from repro.core.comet import CoMeT
from repro.core.config import CoMeTConfig
from repro.mitigations.blockhammer import BlockHammer, BlockHammerConfig
from repro.mitigations.graphene import Graphene
from repro.mitigations.hydra import Hydra, HydraConfig
from repro.mitigations.para import PARA
from repro.mitigations.rega import REGA


def hammer_rows(controller, rows, repeats, bank_index=0, start_cycle=0):
    """Repeatedly activate ``rows`` one request at a time (defeating FR-FCFS
    reordering) so every request forces a fresh activation of its row."""
    cycle = start_cycle
    for _ in range(repeats):
        for row in rows:
            address = controller.mapper.decode(
                controller.mapper.address_for_row(row, bank_index=bank_index)
            )
            request = MemoryRequest(request_type=RequestType.READ, address=address)
            while not controller.enqueue(request, cycle):
                issued = controller.issue_next(cycle)
                cycle = issued if issued is not None else cycle + 1
            # Serve this request completely before issuing the next one.
            cycle = controller.drain(cycle)
    return controller.drain(cycle)


class TestCoMeTIntegration:
    def test_preventive_refreshes_reach_dram(self, tiny_dram_config):
        comet = CoMeT(nrh=64, config=CoMeTConfig(nrh=64))
        controller = MemoryController(tiny_dram_config, mitigation=comet)
        npr = comet.config.npr
        hammer_rows(controller, rows=[50, 120], repeats=npr + 2)
        assert controller.dram.stats.preventive_acts > 0
        victims = {49, 51, 119, 121}
        refreshed = {
            row
            for bank in controller.dram.iter_banks()
            for row, count in bank.activation_counts.items()
            if row in victims
        }
        assert refreshed & victims

    def test_early_preventive_refresh_issues_ref_burst(self, small_dram_config):
        config = CoMeTConfig(
            nrh=40,
            rat_entries=2,
            rat_miss_history_length=8,
            early_refresh_threshold_fraction=0.25,
        )
        comet = CoMeT(nrh=40, config=config)
        controller = MemoryController(small_dram_config, mitigation=comet)
        rows = list(range(10, 34, 2))  # 12 aggressors, far more than 2 RAT entries
        # Hammer long enough for every aggressor to cross NPR at least twice
        # within one counter-reset period, producing RAT capacity misses.
        hammer_rows(controller, rows, repeats=2 * config.npr + 6)
        assert comet.stats.early_refresh_operations >= 1
        # The early refresh translated into a burst of real REF commands.
        assert controller.dram.stats.refreshes >= small_dram_config.refreshes_per_window


class TestGrapheneIntegration:
    def test_graphene_refreshes_victims_in_dram(self, tiny_dram_config):
        graphene = Graphene(nrh=64)
        controller = MemoryController(tiny_dram_config, mitigation=graphene)
        hammer_rows(controller, rows=[80, 200], repeats=graphene.config.threshold + 2)
        assert controller.dram.stats.preventive_acts >= 2


class TestHydraIntegration:
    def test_counter_traffic_reaches_dram(self, tiny_dram_config):
        hydra = Hydra(nrh=64, config=HydraConfig(nrh=64, rcc_entries=2, rows_per_group=8))
        controller = MemoryController(tiny_dram_config, mitigation=hydra)
        rows = list(range(0, 8))
        hammer_rows(controller, rows, repeats=hydra.config.group_threshold + 4)
        assert hydra.stats.mitigation_memory_requests > 0
        assert controller.stats.mitigation_requests > 0
        # Counter reads target the reserved region at the top of the bank.
        top_rows = {
            row
            for bank in controller.dram.iter_banks()
            for row in bank.activation_counts
            if row >= tiny_dram_config.organization.rows_per_bank - 8
        }
        assert top_rows


class TestBlockHammerIntegration:
    def test_throttling_delays_hot_row(self, tiny_dram_config):
        blockhammer = BlockHammer(
            nrh=64, config=BlockHammerConfig(nrh=64, blacklist_fraction=0.25)
        )
        controller = MemoryController(tiny_dram_config, mitigation=blockhammer)
        final_cycle = hammer_rows(controller, rows=[5, 9], repeats=60)
        assert blockhammer.stats.throttled_activations > 0
        # The same access pattern without BlockHammer finishes much earlier.
        unprotected = MemoryController(tiny_dram_config)
        unprotected_final = hammer_rows(unprotected, rows=[5, 9], repeats=60)
        assert final_cycle > unprotected_final


class TestREGAIntegration:
    def test_timing_rewrite_applied_to_dram_model(self, tiny_dram_config):
        rega = REGA(nrh=125)
        controller = MemoryController(tiny_dram_config, mitigation=rega)
        assert controller.dram_config.timing.tRC > tiny_dram_config.timing.tRC

    def test_activations_slower_than_unprotected(self, tiny_dram_config):
        rega_controller = MemoryController(tiny_dram_config, mitigation=REGA(nrh=125))
        plain_controller = MemoryController(tiny_dram_config)
        rega_final = hammer_rows(rega_controller, rows=[3, 7], repeats=40)
        plain_final = hammer_rows(plain_controller, rows=[3, 7], repeats=40)
        assert rega_final > plain_final


class TestPARAIntegration:
    def test_para_issues_preventive_acts(self, tiny_dram_config):
        para = PARA(nrh=64, probability=0.5, seed=3)
        controller = MemoryController(tiny_dram_config, mitigation=para)
        hammer_rows(controller, rows=[30, 90], repeats=30)
        assert controller.dram.stats.preventive_acts > 0
