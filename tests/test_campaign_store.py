"""Tests for the content-addressed campaign result store.

Covers the store's four guarantees: atomic publication, integrity checking
with quarantine on read, cache-version invalidation in place, and
byte-deterministic record files.
"""

import json

import pytest

from repro.campaign.store import ResultStore, default_store_dir
from repro.experiment.execute import execute_spec
from repro.experiment.session import RunRecord
from repro.experiment.spec import ExperimentSpec, MitigationSpec, WorkloadSpec
from repro.sim.sweep import SWEEP_CACHE_VERSION


@pytest.fixture(scope="module")
def spec():
    return ExperimentSpec(
        workload=WorkloadSpec(name="429.mcf", num_requests=200),
        mitigation=MitigationSpec(name="none", nrh=1),
        verify_security=False,
    )


@pytest.fixture(scope="module")
def result(spec):
    return execute_spec(spec)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestRoundTrip:
    def test_put_get_round_trip(self, store, spec, result):
        path = store.put_result(spec, result)
        assert path == store.record_path(spec.content_hash())
        record = store.get_record(spec)
        assert record is not None
        assert record.spec == spec
        assert record.result.ipc == result.ipc
        assert store.hits == 1 and store.misses == 0

    def test_get_result_is_the_sweep_delegation_hook(self, store, spec, result):
        assert store.get_result(spec) is None
        store.put_result(spec, result)
        got = store.get_result(spec)
        assert got is not None and got.ipc == result.ipc

    def test_lookup_by_hash_or_spec(self, store, spec, result):
        store.put_result(spec, result)
        by_hash = store.get_record(spec.content_hash())
        by_spec = store.get_record(spec)
        assert by_hash == by_spec

    def test_miss_counts(self, store, spec):
        assert store.get_record(spec) is None
        assert store.misses == 1 and store.hits == 0

    def test_contains_leaves_counters_alone(self, store, spec, result):
        store.put_result(spec, result)
        assert store.contains(spec)
        assert not store.contains("0" * 64)
        assert store.hits == 0 and store.misses == 0

    def test_len_and_iter(self, store, spec, result):
        assert len(store) == 0
        store.put_result(spec, result)
        assert len(store) == 1
        assert list(store.iter_spec_hashes()) == [spec.content_hash()]
        assert [r.spec for r in store.iter_records()] == [spec]


class TestDeterminism:
    def test_record_bytes_are_a_pure_function_of_the_spec(
        self, store, tmp_path, spec, result
    ):
        """No timestamps, hostnames or worker ids in the payload: two puts
        of the same result — even through different store objects — produce
        byte-identical files (the bit-identical-stores guarantee)."""
        path_a = store.put_result(spec, result)
        other = ResultStore(tmp_path / "other")
        path_b = other.put_result(spec, result)
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_no_temp_files_left_behind(self, store, spec, result):
        store.put_result(spec, result)
        leftovers = [
            p for p in store.root.rglob("*") if p.is_file() and ".tmp." in p.name
        ]
        assert leftovers == []


class TestIntegrity:
    def test_truncated_json_is_quarantined(self, store, spec, result):
        path = store.put_result(spec, result)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get_record(spec) is None
        assert not path.exists()
        assert store.quarantined == 1
        assert (store.quarantine_dir / path.name).exists()

    def test_checksum_mismatch_is_quarantined(self, store, spec, result):
        path = store.put_result(spec, result)
        payload = json.loads(path.read_text())
        payload["record"]["provenance"]["tampered"] = True
        path.write_text(json.dumps(payload))
        assert store.get_record(spec) is None
        assert store.quarantined == 1

    def test_wrong_spec_hash_is_quarantined(self, store, spec, result):
        path = store.put_result(spec, result)
        payload = json.loads(path.read_text())
        payload["spec_hash"] = "f" * 64
        path.write_text(json.dumps(payload))
        assert store.get_record(spec) is None
        assert store.quarantined == 1

    def test_undecodable_record_is_quarantined(self, store, spec, result):
        path = store.put_result(spec, result)
        payload = json.loads(path.read_text())
        record = payload["record"]
        del record["spec"]
        # Keep the checksum consistent so decoding (not integrity) fails.
        from repro.campaign.store import _checksum

        payload["checksum"] = _checksum(record)
        path.write_text(json.dumps(payload))
        assert store.get_record(spec) is None
        assert store.quarantined == 1

    def test_quarantine_never_raises_through_the_read_path(self, store, spec):
        path = store.record_path(spec.content_hash())
        path.parent.mkdir(parents=True)
        path.write_text("not json at all {{{")
        assert store.get_record(spec) is None  # miss, not an exception


class TestInvalidation:
    def test_stale_cache_version_is_a_miss_in_place(self, tmp_path, spec, result):
        old = ResultStore(tmp_path / "store", cache_version=SWEEP_CACHE_VERSION - 1)
        path = old.put_result(spec, result)

        current = ResultStore(tmp_path / "store")
        assert current.get_record(spec) is None
        # Stale, not corrupt: the file stays put (recomputing overwrites it)
        # and nothing is quarantined.
        assert path.exists()
        assert current.quarantined == 0
        assert current.misses == 1

    def test_recompute_overwrites_stale_record(self, tmp_path, spec, result):
        old = ResultStore(tmp_path / "store", cache_version=SWEEP_CACHE_VERSION - 1)
        old.put_result(spec, result)
        current = ResultStore(tmp_path / "store")
        current.put_result(spec, result)
        record = current.get_record(spec)
        assert record is not None and record.result.ipc == result.ipc


class TestQueries:
    def test_summarize_row(self, spec, result):
        record = RunRecord(spec=spec, result=result, provenance={"campaign": "abc"})
        row = ResultStore.summarize(record)
        assert row["workload"] == "429.mcf"
        assert row["mitigation"] == "none"
        assert row["nrh"] == 1
        assert row["ipc"] == result.ipc
        assert row["campaign"] == "abc"

    def test_query_filters(self, store, spec, result):
        store.put_result(spec, result)
        assert len(store.query()) == 1
        assert len(store.query(workload="429.mcf", mitigation="none")) == 1
        assert store.query(workload="502.gcc") == []
        assert store.query(mitigation="comet") == []
        assert store.query(nrh=9999) == []
        assert len(store.query(limit=0)) == 0


class TestCampaignCheckpoints:
    def test_save_load_list(self, store):
        assert store.list_campaigns() == []
        assert store.load_campaign("missing") is None
        state = {"campaign_id": "deadbeef", "total": 4}
        store.save_campaign("deadbeef", state)
        assert store.load_campaign("deadbeef") == state
        assert store.list_campaigns() == ["deadbeef"]


class TestDefaults:
    def test_default_store_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CAMPAIGN_STORE", str(tmp_path / "envstore"))
        assert default_store_dir() == tmp_path / "envstore"
        monkeypatch.delenv("REPRO_CAMPAIGN_STORE")
        assert default_store_dir().name == "campaigns"
