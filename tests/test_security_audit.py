"""Tests for the security-audit campaign runner and its entry points.

Covers the round trip the audit subsystem promises: grid construction,
streaming verification, SecurityReport reduction and JSON serialization,
``Session.audit()`` and the ``repro audit`` CLI, result-cache hits on a
second run, worker-count independence, and the headline acceptance property
— the sketch-aliasing pattern pushes CoMeT's disturbance margin well above
the uniform reference while every mechanism stays verdict-secure.
"""

import json

import pytest

from repro.cli import main
from repro.experiment.session import Session
from repro.experiment.spec import PlatformSpec
from repro.security.audit import (
    AuditFinding,
    SecurityReport,
    build_audit_grid,
    default_audit_mitigations,
    default_audit_patterns,
    design_mitigation_spec,
    design_nrh,
    run_audit,
)

#: Small platform every campaign test runs on: complete refresh windows in
#: very short traces.
TINY = PlatformSpec(rows_per_bank=1024, refresh_window_scale=1.0 / 1024.0)


class TestGridConstruction:
    def test_defaults_cover_synth_and_attack_patterns(self):
        patterns = default_audit_patterns()
        assert "synth_sketch_aliasing" in patterns
        assert "attack_traditional" in patterns
        assert "none" not in default_audit_mitigations()

    def test_grid_shape_and_streaming_mode(self):
        specs = build_audit_grid(
            mitigations=["comet", "para"],
            patterns=["synth_uniform", "synth_blacksmith"],
            nrhs=[125, 250],
            num_requests=500,
        )
        assert len(specs) == 2 * 2 * 2
        assert all(spec.verify_security == "streaming" for spec in specs)
        assert {spec.mitigation.nrh for spec in specs} == {125, 250}

    def test_design_thresholds_when_nrhs_omitted(self):
        specs = build_audit_grid(
            mitigations=["comet", "blockhammer"], patterns=["synth_uniform"]
        )
        by_mechanism = {spec.mitigation.name: spec.mitigation for spec in specs}
        assert by_mechanism["comet"].nrh == design_nrh("comet") == 125
        assert by_mechanism["blockhammer"].nrh == design_nrh("blockhammer") == 250
        # BlockHammer's design point tightens its blacklist fraction for the
        # double-sided victim-summed invariant.
        overrides = design_mitigation_spec("blockhammer").overrides_dict()
        assert overrides["config"].blacklist_fraction == 0.25

    def test_unknown_pattern_rejected_up_front(self):
        with pytest.raises(KeyError, match="synth_nope"):
            build_audit_grid(mitigations=["comet"], patterns=["synth_nope"])

    def test_include_baseline_prepends_none(self):
        specs = build_audit_grid(
            mitigations=["comet"], patterns=["synth_uniform"], include_baseline=True
        )
        assert [spec.mitigation.name for spec in specs] == ["none", "comet"]


class TestReportRoundTrip:
    def _finding(self, **overrides):
        base = dict(
            mitigation="comet",
            pattern="synth_uniform",
            nrh=125,
            channels=1,
            policy="fr_fcfs/open_page/all_bank",
            secure=True,
            max_disturbance=4,
            margin=4 / 125,
            violations=0,
            first_violation_cycle=None,
            preventive_refreshes=0,
            early_refresh_operations=0,
            spec_hash="abc123",
        )
        base.update(overrides)
        return AuditFinding(**base)

    def test_json_round_trip(self):
        report = SecurityReport(
            findings=[
                self._finding(),
                self._finding(
                    pattern="synth_sketch_aliasing",
                    max_disturbance=109,
                    margin=109 / 125,
                ),
                self._finding(
                    mitigation="none",
                    secure=False,
                    max_disturbance=400,
                    margin=3.2,
                    violations=12,
                    first_violation_cycle=9000,
                ),
            ],
            metadata={"seed": 0},
        )
        restored = SecurityReport.from_json(report.to_json())
        assert restored.findings == report.findings
        assert restored.metadata == report.metadata
        assert restored.is_secure is False

    def test_verdict_reduction(self):
        report = SecurityReport(
            findings=[
                self._finding(),
                self._finding(
                    pattern="synth_sketch_aliasing",
                    max_disturbance=109,
                    margin=109 / 125,
                ),
            ]
        )
        verdict = report.verdict_for("comet")
        assert verdict.secure is True
        assert verdict.worst_pattern == "synth_sketch_aliasing"
        assert verdict.worst_margin == pytest.approx(109 / 125)
        assert verdict.patterns_run == 2
        assert "comet" in report.verdict_table()
        with pytest.raises(KeyError):
            report.verdict_for("hydra")

    def test_future_report_version_rejected(self):
        payload = {"report_version": 99, "findings": []}
        with pytest.raises(ValueError, match="report_version 99"):
            SecurityReport.from_dict(payload)


class TestCampaignExecution:
    def test_session_audit_round_trip_with_cache(self, tmp_path):
        """Session.audit: report, then a second run served from the cache,
        bit-identical."""
        session = Session(max_workers=0, cache_dir=tmp_path / "cache")
        kwargs = dict(
            mitigations=["comet"],
            patterns=["synth_uniform", "synth_sketch_aliasing"],
            nrhs=[200],
            num_requests=600,
            platform=TINY,
        )
        first = session.audit(**kwargs)
        assert session.cache_misses == 2 and session.cache_hits == 0
        second = session.audit(**kwargs)
        assert session.cache_hits == 2
        assert second.to_dict() == first.to_dict()
        finding = first.finding_for("comet", "synth_uniform", 200)
        assert finding.margin == finding.max_disturbance / 200
        assert len(finding.spec_hash) == 64

    def test_policy_axis_cells_and_round_trip(self):
        """The controller-policy axis: one cell per policy triple, labelled,
        surviving the JSON round trip."""
        from repro.controller.policies import ControllerPolicySpec

        report = run_audit(
            mitigations=["para"],
            patterns=["synth_uniform"],
            nrhs=[150],
            num_requests=600,
            platform=TINY,
            policies=[None, ControllerPolicySpec(scheduler="fcfs")],
            session=Session(max_workers=0, use_cache=False),
        )
        assert len(report.findings) == 2
        assert {f.policy for f in report.findings} == {
            "fr_fcfs/open_page/all_bank",
            "fcfs/open_page/all_bank",
        }
        assert report.metadata["policies"] == [
            "fcfs/open_page/all_bank",
            "fr_fcfs/open_page/all_bank",
        ]
        default_cell = report.finding_for(
            "para", "synth_uniform", 150, policy="fr_fcfs/open_page/all_bank"
        )
        fcfs_cell = report.finding_for(
            "para", "synth_uniform", 150, policy="fcfs/open_page/all_bank"
        )
        assert default_cell.policy != fcfs_cell.policy
        restored = SecurityReport.from_json(report.to_json())
        assert restored.to_dict() == report.to_dict()
        # The per-mechanism verdict reduces across both policy cells.
        assert report.verdict_for("para").patterns_run == 2

    def test_workers_do_not_change_the_report(self, tmp_path):
        """workers=1 vs workers=4 must reduce to the identical report."""
        kwargs = dict(
            mitigations=["comet", "para"],
            patterns=["synth_uniform", "synth_blacksmith"],
            nrhs=[200],
            num_requests=500,
            platform=TINY,
            seed=3,
        )
        inline = run_audit(
            session=Session(max_workers=1, use_cache=False), **kwargs
        )
        fanned = run_audit(
            session=Session(max_workers=4, use_cache=False), **kwargs
        )
        assert inline.to_dict() == fanned.to_dict()

    def test_baseline_is_insecure_and_mechanism_is_not(self):
        """The sanity contrast: the unprotected baseline must violate the
        invariant under a focused attack; CoMeT must not."""
        report = run_audit(
            mitigations=["comet"],
            patterns=["synth_sketch_aliasing"],
            nrhs=[150],
            num_requests=1500,
            platform=TINY,
            include_baseline=True,
        )
        baseline = report.finding_for("none", "synth_sketch_aliasing", 150)
        protected = report.finding_for("comet", "synth_sketch_aliasing", 150)
        assert not baseline.secure
        assert baseline.violations > 0
        assert baseline.first_violation_cycle is not None
        assert protected.secure
        assert protected.first_violation_cycle is None
        assert report.is_secure is False  # the baseline drags the report down

    def test_sketch_aliasing_raises_comet_margin_over_uniform(self):
        """The acceptance property: on the scaled platform at the design
        NRH, the sketch-aware pattern pushes CoMeT's max-disturbance margin
        well above the uniform reference attack — while staying secure."""
        report = run_audit(
            mitigations=["comet"],
            patterns=["synth_uniform", "synth_sketch_aliasing"],
            num_requests=4000,
        )
        uniform = report.finding_for("comet", "synth_uniform", 125)
        aliasing = report.finding_for("comet", "synth_sketch_aliasing", 125)
        assert aliasing.secure and uniform.secure
        assert aliasing.margin > 2 * uniform.margin
        assert aliasing.max_disturbance > uniform.max_disturbance
        verdict = report.verdict_for("comet")
        assert verdict.worst_pattern == "synth_sketch_aliasing"


class TestAuditCLI:
    def test_cli_report_and_json_out(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        exit_code = main(
            [
                "audit",
                "--mitigations", "comet",
                "--patterns", "synth_uniform", "synth_sketch_aliasing",
                "--nrh", "200",
                "--requests", "800",
                "--workers", "0",
                "--no-cache",
                "--out", str(out),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "per-mechanism verdicts" in output
        assert "synth_sketch_aliasing" in output
        assert "overall: secure" in output

        payload = json.loads(out.read_text())
        assert payload["report_version"] == 1
        assert payload["secure"] is True
        report = SecurityReport.from_json(out.read_text())
        assert {f.pattern for f in report.findings} == {
            "synth_uniform",
            "synth_sketch_aliasing",
        }

    def test_cli_rejects_unknown_pattern(self):
        with pytest.raises(KeyError, match="unknown workload"):
            main(["audit", "--patterns", "not_a_pattern", "--workers", "0", "--no-cache"])

    def test_cli_cache_hits_reported(self, capsys, tmp_path):
        args = [
            "audit",
            "--mitigations", "para",
            "--patterns", "synth_uniform",
            "--nrh", "300",
            "--requests", "500",
            "--workers", "0",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "1 hits" in capsys.readouterr().out
