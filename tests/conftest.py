"""Shared fixtures for the test suite.

The fixtures provide scaled-down DRAM configurations (so complete refresh
windows fit in fast tests), a fake memory controller for unit-testing
mitigation mechanisms in isolation, and small pre-built traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import pytest

from repro.dram.address import AddressMapper, DRAMAddress
from repro.dram.config import DRAMConfig, small_test_config
from repro.dram.dram_system import DRAMSystem


class FakeDRAM:
    """Minimal stand-in for DRAMSystem used when unit-testing mitigations."""

    def __init__(self) -> None:
        self.row_refreshes: List[Tuple[int, DRAMAddress]] = []

    def notify_row_refresh(self, cycle: int, address: DRAMAddress) -> None:
        self.row_refreshes.append((cycle, address))


@dataclass
class FakeController:
    """Captures the calls a mitigation makes on the memory controller."""

    dram_config: DRAMConfig
    preventive_refreshes: List[Tuple[DRAMAddress, int]] = field(default_factory=list)
    rank_refreshes: List[Tuple[int, int, int]] = field(default_factory=list)
    mitigation_requests: List[Tuple[DRAMAddress, bool, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.mapper = AddressMapper(self.dram_config)
        self.dram = FakeDRAM()

    def schedule_preventive_refresh(self, address: DRAMAddress, cycle: int) -> None:
        self.preventive_refreshes.append((address, cycle))

    def schedule_rank_refresh(self, channel: int, rank: int, count: int) -> None:
        self.rank_refreshes.append((channel, rank, count))

    def enqueue_mitigation_request(self, address: DRAMAddress, is_write: bool, cycle: int) -> bool:
        self.mitigation_requests.append((address, is_write, cycle))
        return True


@pytest.fixture
def tiny_dram_config() -> DRAMConfig:
    """A very small DRAM: 1 rank, 4 banks, 256 rows/bank, short refresh window."""
    return small_test_config(
        rows_per_bank=256,
        banks_per_bankgroup=2,
        bankgroups_per_rank=2,
        ranks_per_channel=1,
        refresh_window_scale=1.0 / 2048.0,
    )


@pytest.fixture
def small_dram_config() -> DRAMConfig:
    """The scaled configuration the examples and benches use (2 ranks, 4K rows)."""
    return small_test_config(
        rows_per_bank=4096,
        banks_per_bankgroup=2,
        bankgroups_per_rank=2,
        ranks_per_channel=2,
        refresh_window_scale=1.0 / 512.0,
    )


@pytest.fixture
def full_dram_config() -> DRAMConfig:
    """The paper's full-size configuration (used for area/storage modelling only)."""
    return DRAMConfig()


@pytest.fixture
def mapper(tiny_dram_config) -> AddressMapper:
    return AddressMapper(tiny_dram_config)


@pytest.fixture
def dram_system(tiny_dram_config) -> DRAMSystem:
    return DRAMSystem(tiny_dram_config)


@pytest.fixture
def fake_controller(tiny_dram_config) -> FakeController:
    return FakeController(dram_config=tiny_dram_config)


@pytest.fixture
def fake_controller_small(small_dram_config) -> FakeController:
    return FakeController(dram_config=small_dram_config)


def make_address(
    config: DRAMConfig,
    row: int,
    bank: int = 0,
    bankgroup: int = 0,
    rank: int = 0,
    channel: int = 0,
    column: int = 0,
) -> DRAMAddress:
    """Convenience constructor for DRAM addresses in tests."""
    return DRAMAddress(
        channel=channel,
        rank=rank,
        bankgroup=bankgroup,
        bank=bank,
        row=row % config.organization.rows_per_bank,
        column=column,
    )
