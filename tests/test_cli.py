"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.mitigation == "comet"
        assert args.nrh == 125
        assert args.workload == "429.mcf"

    def test_unknown_mitigation_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--mitigation", "trr"])


class TestCommands:
    def test_workloads_lists_suite(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        assert "429.mcf" in output
        assert "519.lbm" in output
        assert "category" in output

    def test_area_prints_all_mechanisms(self, capsys):
        assert main(["area", "--nrh", "125"]) == 0
        output = capsys.readouterr().out
        assert "CoMeT" in output and "Graphene" in output and "Hydra" in output

    def test_run_small_experiment(self, capsys):
        exit_code = main(
            ["run", "--workload", "502.gcc", "--nrh", "1000", "--requests", "400"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "normalized_IPC" in output
        assert "502.gcc" in output

    def test_attack_reports_security(self, capsys):
        exit_code = main(["attack", "--mitigation", "comet", "--nrh", "125", "--requests", "1500"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "max_disturbance" in output
        assert "yes" in output  # secure

    def test_compare_lists_all_mitigations(self, capsys):
        exit_code = main(
            ["compare", "--workload", "502.gcc", "--nrh", "1000", "--requests", "300"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        for name in ("comet", "graphene", "hydra", "para", "rega", "blockhammer"):
            assert name in output
