"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.mitigation == "comet"
        assert args.nrh == 125
        assert args.workload == "429.mcf"

    def test_unknown_mitigation_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--mitigation", "trr"])

    def test_policy_flag_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheduler == "fr_fcfs"
        assert args.row_policy == "open_page"
        assert args.refresh_policy == "all_bank"
        sweep_args = build_parser().parse_args(
            ["sweep", "--scheduler", "fr_fcfs", "fcfs", "bliss"]
        )
        assert sweep_args.scheduler == ["fr_fcfs", "fcfs", "bliss"]

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheduler", "round_robin"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit", "--row-policy", "open"])


class TestCommands:
    def test_workloads_lists_suite(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        assert "429.mcf" in output
        assert "519.lbm" in output
        assert "category" in output

    def test_list_prints_registered_components(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        # Mitigations with construction metadata.
        assert "registered mitigation mechanisms" in output
        assert "blockhammer" in output and "design_nrh" in output
        # Workloads including the synthesized adversarial patterns.
        assert "synth_blacksmith" in output and "429.mcf" in output
        # All three controller-policy axes.
        for name in ("fr_fcfs", "fcfs", "bliss", "open_page", "closed_page",
                     "adaptive_timeout", "all_bank", "fine_granularity"):
            assert name in output

    def test_sweep_policy_axis(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--workloads", "502.gcc",
                "--mitigations", "para",
                "--nrh", "1000",
                "--requests", "300",
                "--scheduler", "fr_fcfs", "fcfs",
                "--workers", "0",
                "--no-cache",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "policy" in output
        assert "default" in output
        assert "fcfs/open_page/all_bank" in output

    def test_area_prints_all_mechanisms(self, capsys):
        assert main(["area", "--nrh", "125"]) == 0
        output = capsys.readouterr().out
        assert "CoMeT" in output and "Graphene" in output and "Hydra" in output

    def test_run_small_experiment(self, capsys):
        exit_code = main(
            ["run", "--workload", "502.gcc", "--nrh", "1000", "--requests", "400"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "normalized_IPC" in output
        assert "502.gcc" in output

    def test_attack_reports_security(self, capsys):
        exit_code = main(["attack", "--mitigation", "comet", "--nrh", "125", "--requests", "1500"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "max_disturbance" in output
        assert "yes" in output  # secure

    def test_run_from_spec_file(self, capsys, tmp_path):
        from repro.experiment.session import RunRecord
        from repro.experiment.spec import ExperimentSpec, MitigationSpec, WorkloadSpec

        spec = ExperimentSpec(
            workload=WorkloadSpec(name="502.gcc", num_requests=300),
            mitigation=MitigationSpec(name="comet", nrh=500),
        )
        spec_path = tmp_path / "experiment.json"
        spec_path.write_text(spec.to_json())
        out_path = tmp_path / "record.json"

        exit_code = main(["run", "--spec", str(spec_path), "--out", str(out_path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "spec run" in output
        assert spec.content_hash()[:12] in output

        record = RunRecord.from_json(out_path.read_text())
        assert record.spec == spec
        assert record.result.per_core_ipc

    def test_run_rejects_bad_spec_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"workload": {"name": "502.gcc"}}))
        with pytest.raises(SystemExit, match="invalid experiment spec"):
            main(["run", "--spec", str(bad)])
        # Wrong-typed fields must produce the same clean error, not a traceback.
        bad.write_text(
            json.dumps(
                {
                    "workload": {"name": "502.gcc"},
                    "mitigation": {"name": "comet", "nrh": "500"},
                }
            )
        )
        with pytest.raises(SystemExit, match="invalid experiment spec"):
            main(["run", "--spec", str(bad)])
        with pytest.raises(SystemExit, match="spec file not found"):
            main(["run", "--spec", str(tmp_path / "missing.json")])

    def test_compare_lists_all_mitigations(self, capsys):
        exit_code = main(
            ["compare", "--workload", "502.gcc", "--nrh", "1000", "--requests", "300"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        for name in ("comet", "graphene", "hydra", "para", "rega", "blockhammer"):
            assert name in output


class TestCampaignCommands:
    def test_list_includes_queue_backends(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "campaign queue backends" in output
        for backend in ("memory", "directory", "sqlite"):
            assert backend in output

    def test_campaign_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_campaign_run_defaults(self):
        args = build_parser().parse_args(["campaign", "run"])
        assert args.backend == "sqlite"
        assert args.mitigations == ["comet"]
        assert args.budget is None

    def test_campaign_run_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "run", "--backend", "rabbitmq"])

    def test_campaign_run_status_query_round_trip(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        exit_code = main(
            [
                "campaign", "run",
                "--name", "clitest",
                "--workloads", "synth_uniform",
                "--mitigations", "para",
                "--nrh", "250",
                "--requests", "200",
                "--store", store,
                "--workers", "0",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "campaign clitest: finished" in output
        assert "2/2" in output

        assert main(["campaign", "status", "--store", store]) == 0
        output = capsys.readouterr().out
        assert "clitest" in output
        assert "2/2" in output and "yes" in output

        assert main(["campaign", "query", "--store", store,
                     "--mitigation", "para"]) == 0
        output = capsys.readouterr().out
        assert "synth_uniform" in output and "para" in output

        # Re-running the same grid resumes: everything is already stored.
        assert main(
            [
                "campaign", "run",
                "--name", "clitest",
                "--workloads", "synth_uniform",
                "--mitigations", "para",
                "--nrh", "250",
                "--requests", "200",
                "--store", store,
                "--workers", "0",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "finished" in output

    def test_campaign_run_from_file(self, capsys, tmp_path):
        from repro.experiment.spec import CampaignSpec

        campaign = CampaignSpec(
            name="filetest",
            workloads=("synth_uniform",),
            mitigations=("para",),
            nrhs=(250,),
            num_requests=200,
            include_baseline=False,
        )
        path = tmp_path / "campaign.json"
        path.write_text(campaign.to_json())
        exit_code = main(
            [
                "campaign", "run",
                "--campaign-file", str(path),
                "--store", str(tmp_path / "store"),
                "--backend", "memory",
                "--workers", "0",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "campaign filetest: finished" in output
        assert "1/1" in output

    def test_campaign_run_rejects_bad_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="invalid campaign spec"):
            main(["campaign", "run", "--campaign-file", str(bad),
                  "--store", str(tmp_path / "store")])
        with pytest.raises(SystemExit, match="campaign file not found"):
            main(["campaign", "run", "--campaign-file", str(tmp_path / "no.json"),
                  "--store", str(tmp_path / "store")])

    def test_campaign_status_empty_store(self, capsys, tmp_path):
        assert main(["campaign", "status", "--store", str(tmp_path / "empty")]) == 0
        assert "no campaigns checkpointed" in capsys.readouterr().out

    def test_campaign_status_unknown_prefix(self, tmp_path):
        with pytest.raises(SystemExit, match="no campaign matching"):
            main(["campaign", "status", "--store", str(tmp_path / "empty"),
                  "--campaign", "deadbeef"])
