"""Tests for the trace-driven core model."""

import math


from repro.controller.controller import ControllerConfig, MemoryController
from repro.controller.policies import NEVER
from repro.cpu.cache import CacheConfig, LastLevelCache
from repro.cpu.core import Core, CoreConfig
from repro.cpu.trace import Trace


def make_core(tiny_dram_config, trace, core_config=None, controller_config=None, cache=None):
    controller = MemoryController(tiny_dram_config, config=controller_config)
    core = Core(0, trace, controller, config=core_config, cache=cache)
    return core, controller


def run_system(core, controller, max_steps=100_000):
    """Minimal co-simulation loop (mirrors repro.sim.system.System.run)."""
    now = 0.0
    steps = 0
    while steps < max_steps:
        if core.finished and not controller.has_work():
            break
        steps += 1
        if core.has_blocked_request:
            core.retry_blocked(now)
        core_cycle = core.next_event_cycle()
        controller_cycle = controller.next_issue_cycle(int(math.ceil(now)))
        controller_time = float(controller_cycle) if controller_cycle is not None else NEVER
        if core_cycle >= NEVER and controller_time >= NEVER:
            now += 1
            continue
        if core_cycle <= controller_time:
            now = max(now, core_cycle)
            core.step(now)
        else:
            issued = controller.issue_next(int(math.ceil(controller_time)))
            now = max(now, float(issued))
    return now


class TestCoreConfig:
    def test_issue_rate(self):
        config = CoreConfig(width=4, cpu_to_mem_ratio=3.0)
        assert config.issue_rate_per_mem_cycle == 12.0


class TestCoreBasics:
    def test_empty_trace_is_finished(self, tiny_dram_config):
        core, controller = make_core(tiny_dram_config, Trace())
        assert core.finished
        assert core.next_event_cycle() == NEVER
        # The sentinel is a typed int, not float("inf"): cycle arithmetic
        # touching it can never silently become float.
        assert isinstance(core.next_event_cycle(), int)

    def test_single_read_completes(self, tiny_dram_config):
        trace = Trace.from_tuples([(10, 0x1000)])
        core, controller = make_core(tiny_dram_config, trace)
        run_system(core, controller)
        assert core.finished
        assert core.stats.memory_reads == 1
        assert core.stats.retired_instructions == 11
        assert core.instructions_per_cycle() > 0

    def test_write_only_trace(self, tiny_dram_config):
        trace = Trace.from_tuples([(5, 0x1000, True), (5, 0x2000, True)])
        core, controller = make_core(tiny_dram_config, trace)
        run_system(core, controller)
        assert core.finished
        assert core.stats.memory_writes == 2
        assert controller.dram.stats.writes == 2

    def test_ipc_bounded_by_width_times_ratio(self, tiny_dram_config):
        trace = Trace.from_tuples([(100, 0x1000 * (i + 1)) for i in range(20)])
        core, controller = make_core(tiny_dram_config, trace)
        run_system(core, controller)
        assert core.instructions_per_cycle() <= CoreConfig().width + 1e-9

    def test_compute_bound_trace_has_high_ipc(self, tiny_dram_config):
        """Huge bubbles -> IPC approaches the core width."""
        trace = Trace.from_tuples([(4000, 0x40 * i) for i in range(10)])
        core, controller = make_core(tiny_dram_config, trace)
        run_system(core, controller)
        assert core.instructions_per_cycle() > 0.8 * CoreConfig().width

    def test_memory_bound_trace_has_low_ipc(self, tiny_dram_config):
        """Dependent misses with no compute -> IPC far below width."""
        # Alternate rows of one bank so every access is a row conflict.
        from repro.dram.address import AddressMapper

        mapper = AddressMapper(tiny_dram_config)
        entries = []
        for i in range(50):
            entries.append((0, mapper.address_for_row(i % 2 * 10, bank_index=0)))
        trace = Trace.from_tuples(entries)
        config = CoreConfig(max_outstanding_reads=1)
        core, controller = make_core(tiny_dram_config, trace, core_config=config)
        run_system(core, controller)
        assert core.instructions_per_cycle() < 0.5

    def test_mlp_limits_outstanding_reads(self, tiny_dram_config):
        trace = Trace.from_tuples([(0, 0x1000 * (i + 1)) for i in range(30)])
        config = CoreConfig(max_outstanding_reads=2)
        core, controller = make_core(tiny_dram_config, trace, core_config=config)
        run_system(core, controller)
        assert core.finished
        # The core must have observed stalls (finish later than pure dispatch).
        assert core.completion_cycle() > 30

    def test_higher_mlp_is_not_slower(self, tiny_dram_config):
        entries = [(2, 0x1000 * (i + 1)) for i in range(60)]
        low_core, low_ctrl = make_core(
            tiny_dram_config, Trace.from_tuples(entries), CoreConfig(max_outstanding_reads=1)
        )
        run_system(low_core, low_ctrl)
        high_core, high_ctrl = make_core(
            tiny_dram_config, Trace.from_tuples(entries), CoreConfig(max_outstanding_reads=8)
        )
        run_system(high_core, high_ctrl)
        assert high_core.completion_cycle() <= low_core.completion_cycle() + 1


class TestQueueBackpressure:
    def test_core_survives_tiny_queues(self, tiny_dram_config):
        trace = Trace.from_tuples([(0, 0x1000 * (i + 1), i % 2 == 0) for i in range(40)])
        core, controller = make_core(
            tiny_dram_config,
            trace,
            controller_config=ControllerConfig(read_queue_size=2, write_queue_size=2),
        )
        run_system(core, controller)
        assert core.finished
        assert core.stats.memory_reads + core.stats.memory_writes == 40


class TestCoreWithCache:
    def test_cache_filters_repeated_accesses(self, tiny_dram_config):
        entries = [(1, 0x1000)] * 50
        cache = LastLevelCache(CacheConfig(size_bytes=64 * 1024, associativity=4, line_bytes=64))
        core, controller = make_core(tiny_dram_config, Trace.from_tuples(entries), cache=cache)
        run_system(core, controller)
        assert core.stats.llc_hits == 49
        assert core.stats.llc_misses == 1
        assert controller.dram.stats.reads == 1

    def test_dirty_writeback_reaches_dram(self, tiny_dram_config):
        cache = LastLevelCache(CacheConfig(size_bytes=4096, associativity=1, line_bytes=64))
        set_stride = cache.config.num_sets * 64
        entries = [(1, 0x0, True)] + [(1, (i + 1) * set_stride) for i in range(2)]
        core, controller = make_core(tiny_dram_config, Trace.from_tuples(entries), cache=cache)
        run_system(core, controller)
        assert controller.dram.stats.writes >= 1
