"""Tests for the FR-FCFS memory controller."""


from repro.controller.controller import ControllerConfig, MemoryController
from repro.controller.request import MemoryRequest, RequestType
from repro.mitigations.none import NoMitigation


def make_controller(dram_config, **kwargs):
    return MemoryController(dram_config, **kwargs)


def read_request(controller, row, bank_index=0, column=0, cycle=0, core_id=0):
    address = controller.mapper.decode(
        controller.mapper.address_for_row(row, bank_index=bank_index, column=column)
    )
    return MemoryRequest(
        request_type=RequestType.READ,
        address=address,
        core_id=core_id,
        arrival_cycle=cycle,
    )


def write_request(controller, row, bank_index=0, column=0, cycle=0):
    address = controller.mapper.decode(
        controller.mapper.address_for_row(row, bank_index=bank_index, column=column)
    )
    return MemoryRequest(request_type=RequestType.WRITE, address=address, arrival_cycle=cycle)


def run_until_idle(controller, start=0, limit=50_000):
    cycle = start
    for _ in range(limit):
        if not controller.has_work():
            break
        issued = controller.issue_next(cycle)
        if issued is None:
            break
        cycle = issued
    return cycle


class TestEnqueue:
    def test_enqueue_read(self, tiny_dram_config):
        controller = make_controller(tiny_dram_config)
        assert controller.enqueue(read_request(controller, 5), 0)
        assert controller.pending_requests() == 1
        assert controller.stats.read_requests == 1

    def test_read_queue_capacity(self, tiny_dram_config):
        controller = make_controller(tiny_dram_config, config=ControllerConfig(read_queue_size=2))
        assert controller.enqueue(read_request(controller, 1), 0)
        assert controller.enqueue(read_request(controller, 2), 0)
        assert not controller.enqueue(read_request(controller, 3), 0)

    def test_write_queue_capacity(self, tiny_dram_config):
        controller = make_controller(tiny_dram_config, config=ControllerConfig(write_queue_size=1))
        assert controller.enqueue(write_request(controller, 1), 0)
        assert not controller.enqueue(write_request(controller, 2), 0)

    def test_mitigation_traffic_counted_separately(self, tiny_dram_config):
        controller = make_controller(tiny_dram_config)
        address = controller.mapper.decode(controller.mapper.address_for_row(3))
        controller.enqueue_mitigation_request(address, is_write=False, cycle=0)
        assert controller.stats.mitigation_requests == 1
        assert controller.stats.read_requests == 0


class TestReadService:
    def test_single_read_completes_with_act_plus_cas_latency(self, tiny_dram_config):
        controller = make_controller(tiny_dram_config)
        timing = tiny_dram_config.timing
        completed = []
        request = read_request(controller, 7)
        request.on_complete = lambda req, cycle: completed.append(cycle)
        controller.enqueue(request, 0)
        run_until_idle(controller)
        assert completed
        assert completed[0] == timing.tRCD + timing.tCL + timing.tBURST
        assert controller.stats.completed_reads == 1

    def test_row_hit_served_before_older_conflict(self, tiny_dram_config):
        """FR-FCFS: a younger row hit is served before an older row conflict."""
        controller = make_controller(tiny_dram_config)
        order = []
        first = read_request(controller, 1, cycle=0)
        first.on_complete = lambda req, cycle: order.append(("miss_row1", cycle))
        controller.enqueue(first, 0)
        run_until_idle(controller)  # opens row 1

        conflict = read_request(controller, 2, cycle=100)
        conflict.on_complete = lambda req, cycle: order.append(("conflict_row2", cycle))
        hit = read_request(controller, 1, column=8, cycle=101)
        hit.on_complete = lambda req, cycle: order.append(("hit_row1", cycle))
        controller.enqueue(conflict, 100)
        controller.enqueue(hit, 101)
        run_until_idle(controller, start=101)
        names = [name for name, _ in order]
        assert names.index("hit_row1") < names.index("conflict_row2")

    def test_column_cap_prevents_starvation(self, tiny_dram_config):
        """A stream of younger row hits must not starve an older row conflict."""
        config = ControllerConfig(column_cap=4)
        controller = make_controller(tiny_dram_config, config=config)
        completions = {}
        # Open row 1 with an initial request.
        opener = read_request(controller, 1)
        controller.enqueue(opener, 0)
        run_until_idle(controller)

        # An older conflicting request followed by a burst of younger row hits.
        conflict = read_request(controller, 2, cycle=100)
        conflict.on_complete = lambda req, cycle: completions.setdefault("conflict", cycle)
        controller.enqueue(conflict, 100)
        for index in range(12):
            request = read_request(controller, 1, column=(index + 1) * 8)
            request.on_complete = lambda req, cycle, i=index: completions.setdefault(f"hit{i}", cycle)
            controller.enqueue(request, 101 + index)
        run_until_idle(controller, start=101)
        assert "conflict" in completions
        # Without the cap all 12 hits would be served first; with a cap of 4
        # the conflict must finish before the later hits.
        assert completions["conflict"] < completions["hit11"]

    def test_column_cap_without_conflict_keeps_serving_hits(self, tiny_dram_config):
        """The starvation guard only kicks in when someone is starving: a
        pure hit stream past the cap must not trigger a precharge."""
        config = ControllerConfig(column_cap=4)
        controller = make_controller(tiny_dram_config, config=config)
        controller.enqueue(read_request(controller, 1), 0)
        run_until_idle(controller)
        pres_before = controller.dram.stats.pres
        for i in range(8):  # twice the cap, all hits, no conflicting request
            controller.enqueue(
                read_request(controller, 1, column=8 * (i + 1), cycle=100 + i),
                100 + i,
            )
        run_until_idle(controller, start=100)
        assert controller.dram.stats.pres == pres_before
        assert controller.stats.completed_reads == 9

    def test_bank_parallelism(self, tiny_dram_config):
        """Requests to different banks overlap: total time far below serial time."""
        controller = make_controller(tiny_dram_config)
        timing = tiny_dram_config.timing
        completions = []
        num_banks = 4
        for bank in range(num_banks):
            request = read_request(controller, 10, bank_index=bank)
            request.on_complete = lambda req, cycle: completions.append(cycle)
            controller.enqueue(request, 0)
        run_until_idle(controller)
        assert len(completions) == num_banks
        serial_time = num_banks * (timing.tRCD + timing.tCL + timing.tBURST)
        assert max(completions) < serial_time


class TestWrites:
    def test_writes_drain_when_read_queue_empty(self, tiny_dram_config):
        controller = make_controller(tiny_dram_config)
        controller.enqueue(write_request(controller, 3), 0)
        run_until_idle(controller)
        assert controller.dram.stats.writes == 1
        assert not controller.write_queue

    def test_write_drain_high_watermark(self, tiny_dram_config):
        config = ControllerConfig(write_drain_high=4, write_drain_low=1)
        controller = make_controller(tiny_dram_config, config=config)
        for i in range(6):
            controller.enqueue(write_request(controller, i, column=8 * i), 0)
        run_until_idle(controller)
        assert controller.dram.stats.writes == 6

    def test_writes_buffered_below_high_watermark(self, tiny_dram_config):
        """With reads pending and writes below the high watermark, every
        selected command serves the read stream — writes stay buffered."""
        config = ControllerConfig(write_drain_high=4, write_drain_low=2)
        controller = make_controller(tiny_dram_config, config=config)
        for i in range(3):
            controller.enqueue(write_request(controller, i + 10, column=8 * i), 0)
        controller.enqueue(read_request(controller, 1), 0)
        cycle = 0
        while controller.read_queue:
            cycle = controller.issue_next(cycle)
            assert not controller._draining_writes
        assert len(controller.write_queue) == 3
        assert controller.dram.stats.writes == 0

    def test_write_drain_hysteresis(self, tiny_dram_config):
        """Drain mode latches on at >= high and off only at <= low, so the
        queue level between the watermarks does not flap the mode."""
        config = ControllerConfig(write_drain_high=4, write_drain_low=2)
        controller = make_controller(tiny_dram_config, config=config)
        for i in range(4):
            controller.enqueue(write_request(controller, i + 10, column=8 * i), 0)
        controller.enqueue(read_request(controller, 1), 0)
        controller.next_issue_cycle(0)
        assert controller._draining_writes
        cycle = 0
        while len(controller.write_queue) > config.write_drain_low:
            cycle = controller.issue_next(cycle)
            # Between low and high the latched mode must hold (hysteresis).
            if len(controller.write_queue) > config.write_drain_low:
                assert controller._draining_writes
        controller.next_issue_cycle(cycle)
        assert not controller._draining_writes


class TestRefresh:
    def test_periodic_refresh_issued(self, tiny_dram_config):
        controller = make_controller(tiny_dram_config)
        # Enqueue a trickle of reads spanning more than one tREFI.
        span = tiny_dram_config.tREFI * 3
        request = read_request(controller, 1)
        controller.enqueue(request, 0)
        run_until_idle(controller)
        # Jump past several refresh intervals and give the controller work.
        late = read_request(controller, 2, cycle=span)
        controller.enqueue(late, span)
        run_until_idle(controller, start=span)
        assert controller.dram.stats.refreshes >= 1

    def test_extra_rank_refreshes_all_issued(self, tiny_dram_config):
        controller = make_controller(tiny_dram_config)
        controller.schedule_rank_refresh(0, 0, 3)
        assert controller.has_work()
        run_until_idle(controller)
        assert controller.dram.stats.refreshes >= 3
        assert controller.stats.early_refresh_operations == 1


class TestPreventiveRefresh:
    def test_preventive_refresh_activates_and_closes_victim(self, tiny_dram_config):
        controller = make_controller(tiny_dram_config)
        victim = controller.mapper.decode(controller.mapper.address_for_row(8))
        controller.schedule_preventive_refresh(victim, 0)
        assert controller.stats.preventive_refreshes == 1
        run_until_idle(controller)
        assert controller.dram.stats.preventive_acts == 1
        bank = controller.dram.bank_for(victim)
        assert bank.activation_count(8) == 1
        assert not controller.preventive_queue

    def test_preventive_refresh_prioritized_over_reads(self, tiny_dram_config):
        controller = make_controller(tiny_dram_config)
        # A read and a preventive refresh to the same (closed) bank: the
        # preventive refresh's ACT must win the first activation.
        request = read_request(controller, 1)
        controller.enqueue(request, 0)
        victim = controller.mapper.decode(controller.mapper.address_for_row(50))
        controller.schedule_preventive_refresh(victim, 0)
        controller.issue_next(0)
        bank = controller.dram.bank_for(victim)
        assert bank.open_row == 50

    def test_preventive_refresh_to_open_bank_precharges_first(self, tiny_dram_config):
        controller = make_controller(tiny_dram_config)
        request = read_request(controller, 1)
        controller.enqueue(request, 0)
        run_until_idle(controller)  # leaves row 1 open
        victim = controller.mapper.decode(controller.mapper.address_for_row(60))
        controller.schedule_preventive_refresh(victim, 200)
        run_until_idle(controller, start=200)
        bank = controller.dram.bank_for(victim)
        assert bank.activation_count(60) == 1


class TestMitigationWiring:
    def test_mitigation_observes_activations(self, tiny_dram_config):
        mitigation = NoMitigation()
        observed = []
        mitigation.on_activation = lambda cycle, address, prev: observed.append(address.row)
        controller = make_controller(tiny_dram_config, mitigation=mitigation)
        controller.enqueue(read_request(controller, 4), 0)
        run_until_idle(controller)
        assert observed == [4]

    def test_drain_returns_final_cycle(self, tiny_dram_config):
        controller = make_controller(tiny_dram_config)
        controller.enqueue(read_request(controller, 4), 0)
        final = controller.drain(0)
        assert final > 0
        assert not controller.has_work()
