"""The DDR5-era low-NRH scaling study (audit-mode campaigns).

Three layers:

* **Spec contract** — ``CampaignSpec(audit=True)`` expands through
  :func:`repro.security.audit.build_audit_grid` (streaming verification,
  refresh-policy mechanisms on the mitigation axis), while the new
  ``audit``/``seed`` fields serialize only when non-default so every
  pre-existing campaign's ``campaign_id()`` is unchanged.
* **Mechanism pins (tier-1)** — a narrowed study (PRAC + NRH-scaled RFM
  against blacksmith at NRH 64 and 20) driven through a store-backed
  campaign with a mid-flight budget stop: the mechanisms must hold the
  invariant at both thresholds with their designed margins, the baseline
  must not, and the resumed campaign must recompute nothing.
* **The full study (slow)** — every mechanism x both patterns x
  NRH {125, 64, 32, 20}: the frontier regression test.  The per-mechanism
  verdicts pinned there are the study's headline result — which trackers
  survive ultra-low thresholds with their default configurations, and at
  what margin the in-DRAM mechanisms hold.
"""

import pytest

from repro.experiment.session import Session
from repro.experiment.spec import CampaignSpec
from repro.security.audit import (
    SCALING_MECHANISMS,
    SCALING_NRHS,
    SCALING_PATTERNS,
    build_audit_grid,
    mechanism_of,
    rfm_policy_for_nrh,
    scaling_campaign,
    scaling_report,
)


def _mini_study(num_requests=2500):
    return scaling_campaign(
        mechanisms=("prac", "rfm"),
        patterns=("synth_blacksmith",),
        nrhs=(64, 20),
        num_requests=num_requests,
    )


class TestAuditCampaignSpec:
    def test_scaling_grid_shape(self):
        campaign = scaling_campaign()
        cells = campaign.cells()
        mechanisms = [mechanism_of(spec) for spec, _ in cells]
        per_mechanism = len(SCALING_PATTERNS) * len(SCALING_NRHS)
        for mechanism in (*SCALING_MECHANISMS, "none"):
            if mechanism == "para":
                # PARA's derived p goes supercritical below NRH ~ 50: the
                # grid refuses those cells (infeasible, not insecure).
                feasible = [nrh for nrh in SCALING_NRHS if nrh >= 50]
                assert mechanisms.count("para") == (
                    len(SCALING_PATTERNS) * len(feasible)
                )
            else:
                assert mechanisms.count(mechanism) == per_mechanism
        expected = (len(SCALING_MECHANISMS) + 1) * per_mechanism  # + baseline
        assert len(cells) == expected - 2 * len(SCALING_PATTERNS)
        # Every cell carries the streaming verifier: this is an audit.
        assert all(spec.verify_security == "streaming" for spec, _ in cells)

    def test_infeasible_cells_reported_not_expanded(self):
        from repro.mitigations.para import para_is_feasible

        assert para_is_feasible(50)
        assert not para_is_feasible(49)
        specs = build_audit_grid(
            mitigations=["para"], patterns=["synth_uniform"], nrhs=[64, 32, 20]
        )
        assert [spec.mitigation.nrh for spec in specs] == [64]

    def test_audit_fields_serialize_only_when_set(self):
        """Pre-existing campaigns must keep their campaign_id byte for
        byte: the audit/seed keys only appear when non-default."""
        legacy = CampaignSpec(
            name="x", workloads=("429.mcf",), mitigations=("comet",), nrhs=(125,)
        )
        data = legacy.to_dict()
        assert "audit" not in data and "seed" not in data
        assert CampaignSpec.from_dict(data) == legacy

        study = scaling_campaign()
        assert study.to_dict()["audit"] is True
        assert CampaignSpec.from_dict(study.to_dict()) == study
        assert study.campaign_id() != legacy.campaign_id()

    def test_audit_flag_changes_campaign_id(self):
        kwargs = dict(
            name="s",
            workloads=("synth_uniform",),
            mitigations=("comet",),
            nrhs=(125,),
        )
        assert (
            CampaignSpec(**kwargs).campaign_id()
            != CampaignSpec(audit=True, **kwargs).campaign_id()
        )

    def test_priorities_key_on_mechanism_label(self):
        """``priorities={"rfm": 5}`` must reach the rfm cells even though
        they run the ``"none"`` mitigation under the rfm policy."""
        campaign = scaling_campaign(
            mechanisms=("prac", "rfm"), patterns=("synth_uniform",), nrhs=(64,)
        )
        campaign = CampaignSpec.from_dict({**campaign.to_dict(), "priorities": {"rfm": 5}})
        by_mechanism = {mechanism_of(spec): pri for spec, pri in campaign.cells()}
        assert by_mechanism["rfm"] == 5
        assert by_mechanism["prac"] == 0
        assert by_mechanism["none"] == 6  # baseline outranks every override


class TestRFMMechanismRows:
    def test_rfm_policy_scales_with_nrh(self):
        for nrh in SCALING_NRHS:
            policy = rfm_policy_for_nrh(nrh)
            params = policy.params_dict()
            assert params["raaimt"] == max(1, nrh // 4)
            assert params["raammt"] == 2 * params["raaimt"]
            assert policy.refresh_policy == "rfm"

    def test_rfm_rows_run_baseline_under_the_policy(self):
        specs = build_audit_grid(
            mitigations=["rfm"], patterns=["synth_uniform"], nrhs=[64]
        )
        assert len(specs) == 1
        (spec,) = specs
        assert spec.mitigation.name == "none"
        assert spec.platform.controller.refresh_policy == "rfm"
        assert spec.platform.controller.params_dict()["raaimt"] == 16
        assert mechanism_of(spec) == "rfm"
        assert "rfm@64" in spec.name

    def test_mechanism_of_leaves_ordinary_cells_alone(self):
        specs = build_audit_grid(
            mitigations=["comet"],
            patterns=["synth_uniform"],
            nrhs=[64],
            include_baseline=True,
        )
        assert sorted(mechanism_of(spec) for spec in specs) == ["comet", "none"]


class TestScalingVerdictPins:
    """The study's contract in miniature, cheap enough for tier-1."""

    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        campaign = _mini_study()
        store_dir = tmp_path_factory.mktemp("scaling") / "store"
        session = Session(max_workers=0, store=store_dir, use_cache=False)

        # Phase 1: stop mid-flight after two cells (the kill).
        partial = session.campaign(campaign, budget=2)
        assert not partial.finished
        assert partial.executed == 2
        partial_report = scaling_report(session.store, campaign)
        assert partial_report.metadata["missing_cells"] == partial.total - 2

        # Phase 2: resume to completion; only the remainder executes.
        status = session.campaign(campaign)
        assert status.finished
        assert status.executed == status.total - 2

        # Phase 3: re-running a finished campaign recomputes nothing.
        again = session.campaign(campaign)
        assert again.finished and again.executed == 0
        return scaling_report(session.store, campaign)

    def test_report_is_complete(self, report):
        assert report.metadata["missing_cells"] == 0
        assert report.metadata["mechanisms"] == ["none", "prac", "rfm"]

    def test_baseline_is_insecure(self, report):
        verdict = report.verdict_for("none")
        assert not verdict.secure
        assert verdict.worst_margin > 1.0

    @pytest.mark.parametrize("nrh", [64, 20])
    def test_prac_holds_at_ultra_low_nrh(self, report, nrh):
        """ABO at T = NRH/2 bounds victim disturbance below NRH."""
        finding = report.finding_for("prac", "synth_blacksmith", nrh)
        assert finding.secure
        assert finding.max_disturbance < nrh

    @pytest.mark.parametrize("nrh", [64, 20])
    def test_rfm_holds_at_ultra_low_nrh(self, report, nrh):
        """NRH-scaled RAAIMT keeps max disturbance ~= 2 * RAAIMT = NRH/2."""
        finding = report.finding_for("rfm", "synth_blacksmith", nrh)
        assert finding.secure
        raaimt = rfm_policy_for_nrh(nrh).params_dict()["raaimt"]
        assert finding.max_disturbance <= 2 * raaimt + 2


@pytest.mark.slow
class TestFullScalingStudy:
    """The complete frontier: every mechanism, both patterns, four NRHs.

    Several minutes of simulation - runs under ``-m slow`` (the benchmark
    lane), not tier-1.  Mechanisms run their *default* constructions, so
    the study shows the frontier as shipped: designs tuned for NRH >= 250
    (blockhammer's throttle window, hydra's sampling budget) fall to the
    blacksmith pattern below their design threshold, PARA drops out
    entirely below NRH ~ 50 (supercritical preventive cascade — infeasible
    cells, absent from the grid), while PRAC/ABO and NRH-scaled RFM —
    whose per-row counters cost the same silicon at any threshold — hold
    all the way down to NRH=20.
    """

    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        campaign = scaling_campaign()
        store_dir = tmp_path_factory.mktemp("scaling-full") / "store"
        session = Session(max_workers=0, store=store_dir, use_cache=False)
        status = session.campaign(campaign)
        assert status.finished
        return scaling_report(session.store, campaign)

    def test_every_cell_present(self, report):
        assert report.metadata["missing_cells"] == 0
        assert len(report.findings) == report.metadata["total_cells"]

    def test_baseline_refutes_the_attack_not_the_control(self, report):
        """The unprotected baseline must fall to the attack pattern at every
        threshold, while the uniform rows — benign traffic, the study's
        false-positive control — stay below NRH on their own."""
        for finding in report.findings:
            if finding.mitigation != "none":
                continue
            if finding.pattern == "synth_uniform":
                assert finding.secure, finding
            else:
                assert not finding.secure, finding

    def test_in_dram_mechanisms_hold_at_every_threshold(self, report):
        """The study's headline: PRAC and NRH-scaled RFM stay secure all
        the way down to NRH=20 with threshold-independent on-chip cost."""
        for mechanism in ("prac", "rfm"):
            verdict = report.verdict_for(mechanism)
            assert verdict.secure, report.verdict_table()
            assert verdict.worst_margin < 1.0

    def test_tracker_frontier(self, report):
        """Exact trackers survive the scaling; threshold-tuned designs and
        sampling trackers do not.  CoMeT, Graphene and REGA hold at every
        threshold; BlockHammer (designed for NRH >= 250) and Hydra's
        sampled counters fall to the blacksmith pattern; PARA only fields
        its two feasible cells per pattern (NRH >= 50)."""
        for mechanism in ("comet", "graphene", "rega"):
            assert report.verdict_for(mechanism).secure, report.verdict_table()
        for mechanism in ("blockhammer", "hydra"):
            assert not report.verdict_for(mechanism).secure, report.verdict_table()
        para = report.verdict_for("para")
        assert para.secure and para.patterns_run == 2 * len(SCALING_PATTERNS)
        assert report.metadata["infeasible"] == ["para@32", "para@20"]

    def test_margins_tighten_as_nrh_falls(self, report):
        """PRAC's worst margin stays pinned just under 1.0 (T = NRH/2 puts
        max disturbance at NRH-1 under a targeted attack) while RFM's
        NRH-scaled RAAIMT keeps a ~2x margin at every threshold."""
        for nrh in SCALING_NRHS:
            prac = report.finding_for("prac", "synth_blacksmith", nrh)
            rfm = report.finding_for("rfm", "synth_blacksmith", nrh)
            assert prac.max_disturbance < nrh
            assert rfm.margin <= 0.6
