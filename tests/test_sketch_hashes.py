"""Tests for the hash families used by the sketch-based trackers."""

import pytest

from repro.sketch.hashes import (
    MultiplyShiftHashFamily,
    ShiftMaskHashFamily,
    TabulationHashFamily,
    collision_rate,
    make_hash_family,
)

FAMILIES = [ShiftMaskHashFamily, MultiplyShiftHashFamily, TabulationHashFamily]


@pytest.mark.parametrize("family_cls", FAMILIES)
def test_hash_within_range(family_cls):
    family = family_cls(num_hashes=4, num_buckets=512, seed=3)
    for key in range(0, 5000, 7):
        for index in range(4):
            value = family.hash(index, key)
            assert 0 <= value < 512


@pytest.mark.parametrize("family_cls", FAMILIES)
def test_hash_deterministic_for_same_seed(family_cls):
    a = family_cls(num_hashes=3, num_buckets=128, seed=11)
    b = family_cls(num_hashes=3, num_buckets=128, seed=11)
    for key in range(100):
        assert a.hash_all(key) == b.hash_all(key)


@pytest.mark.parametrize("family_cls", FAMILIES)
def test_hash_varies_with_seed(family_cls):
    a = family_cls(num_hashes=3, num_buckets=1024, seed=1)
    b = family_cls(num_hashes=3, num_buckets=1024, seed=2)
    keys = list(range(200))
    differing = sum(1 for key in keys if a.hash_all(key) != b.hash_all(key))
    assert differing > 150


@pytest.mark.parametrize("family_cls", FAMILIES)
def test_hash_functions_are_distinct(family_cls):
    """Different hash functions of one family should not be identical."""
    family = family_cls(num_hashes=4, num_buckets=512, seed=5)
    keys = list(range(0, 1000, 3))
    for i in range(4):
        for j in range(i + 1, 4):
            same = sum(1 for key in keys if family.hash(i, key) == family.hash(j, key))
            assert same < len(keys) * 0.5


def test_hash_all_length():
    family = ShiftMaskHashFamily(num_hashes=5, num_buckets=64, seed=0)
    assert len(family.hash_all(123)) == 5


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ShiftMaskHashFamily(num_hashes=0, num_buckets=16)
    with pytest.raises(ValueError):
        ShiftMaskHashFamily(num_hashes=2, num_buckets=0)


def test_make_hash_family_by_name():
    family = make_hash_family("shift_mask", 2, 32, seed=1)
    assert isinstance(family, ShiftMaskHashFamily)
    family = make_hash_family("multiply_shift", 2, 32, seed=1)
    assert isinstance(family, MultiplyShiftHashFamily)
    family = make_hash_family("tabulation", 2, 32, seed=1)
    assert isinstance(family, TabulationHashFamily)


def test_make_hash_family_unknown_name():
    with pytest.raises(ValueError, match="unknown hash family"):
        make_hash_family("md5", 2, 32)


@pytest.mark.parametrize("family_cls", FAMILIES)
def test_collision_rate_is_low_for_row_addresses(family_cls):
    """Full-group collisions should be rare for a realistic row-address stream."""
    family = family_cls(num_hashes=4, num_buckets=512, seed=7)
    keys = list(range(0, 4096, 2))  # sequential even row IDs
    assert collision_rate(family, keys) < 0.01


def test_collision_rate_trivial_cases():
    family = ShiftMaskHashFamily(num_hashes=2, num_buckets=8, seed=0)
    assert collision_rate(family, []) == 0.0
    assert collision_rate(family, [42]) == 0.0
    # Identical keys always collide with themselves.
    assert collision_rate(family, [7, 7]) == 1.0


def test_distribution_is_roughly_uniform():
    """No single bucket should absorb a large share of sequential row IDs."""
    family = ShiftMaskHashFamily(num_hashes=1, num_buckets=256, seed=9)
    counts = [0] * 256
    total = 8192
    for key in range(total):
        counts[family.hash(0, key)] += 1
    assert max(counts) < total / 256 * 4
