"""Setup shim for environments without the `wheel` package.

The project is fully described by pyproject.toml; this file only exists so
`pip install -e . --no-build-isolation --no-use-pep517` (or
`python setup.py develop`) works on machines where PEP 660 editable builds
are unavailable (no `wheel` module, no network access).
"""

from setuptools import setup

setup()
