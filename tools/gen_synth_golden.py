"""Regenerate the golden synthesized-attack traces in tests/golden/synth/.

Each file pins the exact bytes (Trace.save text format) of one synthesized
adversarial pattern at a fixed seed on the scaled experiment configuration.
``tests/test_security_synth.py`` regenerates the same traces and compares
byte-for-byte, so a synthesizer refactor cannot silently change the access
patterns behind published security verdicts.  Regenerate only when a
pattern's semantics intentionally change:

    PYTHONPATH=src python tools/gen_synth_golden.py
"""

from __future__ import annotations

from pathlib import Path

from repro.experiment.spec import WorkloadSpec
from repro.security.synth import synth_pattern_names
from repro.sim.runner import default_experiment_config

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden" / "synth"

#: Small enough to diff, long enough to cover every pattern's schedule shape
#: (bursts, gaps, decoy rotations).
GOLDEN_REQUESTS = 240
GOLDEN_SEED = 1


def generate() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    dram_config = default_experiment_config()
    for name in synth_pattern_names():
        trace = WorkloadSpec(
            name=name, num_requests=GOLDEN_REQUESTS, seed=GOLDEN_SEED
        ).build_traces(dram_config)[0]
        path = GOLDEN_DIR / f"{name}.trace"
        trace.save(path)
        print(f"wrote {path} ({len(trace)} entries)")


if __name__ == "__main__":
    generate()
