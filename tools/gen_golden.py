"""Regenerate the golden 1-channel results used by tests/test_channel_fabric.py.

The golden file pins the exact numerical output of the simulator for one
benign workload, one attack and one 2-core mix across the whole mitigation
registry.  The channel-partitioned fabric must reproduce these bit-for-bit
when ``channels=1`` (the refactor's equivalence contract); regenerate only
when simulation semantics intentionally change:

    PYTHONPATH=src python tools/gen_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.sim.runner import (
    MITIGATION_REGISTRY,
    default_experiment_config,
    run_multi_core,
    run_single_core,
)
from repro.workloads.attacks import traditional_rowhammer_attack
from repro.workloads.suite import build_multicore_traces, build_trace

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "tests" / "golden" / "channels1.json"


def result_fingerprint(result) -> dict:
    """Every numerically meaningful field of a SimulationResult, unrounded."""
    return {
        "name": result.name,
        "mitigation_name": result.mitigation_name,
        "cycles": result.cycles,
        "per_core_ipc": result.per_core_ipc,
        "per_core_instructions": result.per_core_instructions,
        "average_read_latency": result.average_read_latency,
        "read_requests": result.read_requests,
        "write_requests": result.write_requests,
        "dram_stats": result.dram_stats,
        "energy": result.energy.as_dict(),
        "preventive_refreshes": result.preventive_refreshes,
        "early_refresh_operations": result.early_refresh_operations,
        "mitigation_stats": result.mitigation_stats,
        "security_ok": result.security_ok,
        "max_disturbance": result.max_disturbance,
        "steps": result.steps,
    }


def generate() -> dict:
    dram_config = default_experiment_config()
    benign = build_trace("450.soplex", num_requests=2000, dram_config=dram_config)
    attack = traditional_rowhammer_attack(
        num_requests=3000, dram_config=dram_config, aggressor_rows_per_bank=2
    )
    mix = build_multicore_traces(
        "429.mcf", num_cores=2, num_requests=1200, dram_config=dram_config
    )

    golden: dict = {}
    for name in sorted(MITIGATION_REGISTRY):
        result = run_single_core(
            benign, name, nrh=250, dram_config=dram_config,
            verify_security=name != "none",
        )
        golden[f"benign/{name}"] = result_fingerprint(result)
    golden["attack/comet"] = result_fingerprint(
        run_single_core(attack, "comet", nrh=125, dram_config=dram_config)
    )
    golden["multicore/comet"] = result_fingerprint(
        run_multi_core(mix, "comet", nrh=250, dram_config=dram_config, name="mix")
    )
    return golden


def main() -> None:
    golden = generate()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print(f"wrote {len(golden)} golden fingerprints to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
